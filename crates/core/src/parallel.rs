//! The rayon-based parallel execution layer.
//!
//! Every ARSP algorithm has a parallel entry point (see
//! [`crate::ArspAlgorithm::run_parallel`]) that produces **bitwise-identical**
//! results to its sequential counterpart:
//!
//! * **LOOP** parallelises over instances — each instance's probability is an
//!   independent product accumulated in a deterministic order,
//! * **KDTT+ / QDTT+** parallelise the fused kd-ASP\* traversal: sibling
//!   subtrees run on cloned copies of the exactly-restored traversal state
//!   (σ, β, χ), so every leaf sees the same float operations as in the
//!   sequential recursion,
//! * **KDTT** parallelises the score-space mapping (the prebuilt-tree
//!   traversal itself stays sequential),
//! * **B&B** parallelises the per-object window queries of each popped
//!   instance; the probability product is then folded in object order,
//! * **DUAL** parallelises over instance chunks: each instance's probability
//!   is an independent fold over the (read-only) per-object forests,
//! * **ENUM** stays sequential: its per-instance sums over possible worlds
//!   are order-sensitive under floating point, so chunked summation would
//!   change results. It is an exponential toy baseline either way.
//!
//! The engine's [`crate::engine::Execution::Parallel`] queries run the same
//! strategies as **flat twins** over the cached columnar structures, with
//! per-worker arenas drawn from pooled [`crate::scratch::ScratchPool`]
//! stacks — same bitwise guarantee, no per-task arena allocation at steady
//! state.
//!
//! The determinism guarantee is checked end-to-end by the
//! `parallel_agreement` and `engine_agreement` integration tests.
//!
//! ## Thread-count knob
//!
//! [`set_num_threads`] bounds the fan-out of all parallel entry points
//! process-wide; `0` (the default) means "use all available cores". Because
//! parallel and sequential paths agree bitwise, changing the knob never
//! changes any result — only the wall-clock time.
//!
//! The `ARSP_NUM_THREADS` environment variable provides the knob's initial
//! value (read once, on first use): running a binary or a test suite under
//! `ARSP_NUM_THREADS=2` behaves exactly as if `set_num_threads(2)` had been
//! called at startup, and `set_num_threads(0)` restores that environment
//! default rather than "all cores". CI uses this to exercise every parallel
//! twin deterministically on every push.
//!
//! Without the `parallel` cargo feature every parallel entry point simply
//! delegates to its sequential twin and [`num_threads`] reports `1`.

use std::sync::atomic::{AtomicUsize, Ordering};

/// The process-wide thread-count override; `0` = automatic.
static NUM_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Bounds the number of worker threads used by the parallel ARSP entry
/// points. `0` restores the default (the `ARSP_NUM_THREADS` environment
/// value when set, otherwise all available cores). Takes effect for
/// computations started after the call.
pub fn set_num_threads(n: usize) {
    NUM_THREADS.store(n, Ordering::SeqCst);
}

/// Parses an `ARSP_NUM_THREADS` value: a positive integer bounds the worker
/// count, everything else (unset, empty, `0`, garbage) means "no bound".
fn parse_thread_env(value: Option<&str>) -> usize {
    value
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(0)
}

/// The `ARSP_NUM_THREADS` environment default, read once on first use.
fn env_num_threads() -> usize {
    static ENV_THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *ENV_THREADS.get_or_init(|| parse_thread_env(std::env::var("ARSP_NUM_THREADS").ok().as_deref()))
}

/// The effective knob value: the [`set_num_threads`] override when set,
/// otherwise the `ARSP_NUM_THREADS` environment default; `0` = no bound.
fn knob() -> usize {
    let n = NUM_THREADS.load(Ordering::SeqCst);
    if n > 0 {
        n
    } else {
        env_num_threads()
    }
}

/// The number of worker threads parallel entry points will fan out to:
/// the [`set_num_threads`] override when set, otherwise the
/// `ARSP_NUM_THREADS` environment default, otherwise all available cores.
/// Always `1` when the `parallel` feature is disabled.
pub fn num_threads() -> usize {
    let n = knob();
    if n > 0 {
        return n;
    }
    #[cfg(feature = "parallel")]
    {
        rayon::current_num_threads()
    }
    #[cfg(not(feature = "parallel"))]
    {
        1
    }
}

/// Number of binary fan-out levels needed to keep `num_threads()` workers
/// busy: the smallest `l` with `2^l >= num_threads()`.
#[cfg(feature = "parallel")]
pub(crate) fn fan_out_levels() -> usize {
    let threads = num_threads();
    threads.next_power_of_two().trailing_zeros() as usize
}

/// Runs `f` inside a rayon pool sized to the [`set_num_threads`] override, so
/// that *every* parallel driver under `f` — including plain `par_iter`s that
/// would otherwise split by the machine's core count — honours the knob.
/// With no override set this is a plain call (rayon's default sizing
/// applies); pool construction is only paid when the knob is active.
#[cfg(feature = "parallel")]
pub(crate) fn with_pool<R>(f: impl FnOnce() -> R) -> R {
    let n = knob();
    if n == 0 {
        return f();
    }
    install_sized(n, f)
}

/// Runs `f` inside a dedicated rayon pool of `threads` workers (`0` falls
/// back to [`with_pool`], i.e. the process-wide knob). Used for per-query
/// thread bounds: a scoped pool never touches the process-global override,
/// so concurrent callers cannot race each other's settings and a panic in
/// `f` leaks nothing. Note the plain-`par_iter` paths inherit the installed
/// pool, but when the process-wide knob *is* set, nested [`with_pool`] calls
/// still honour it — the global override wins over the per-call size.
#[cfg(feature = "parallel")]
pub(crate) fn with_pool_sized<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    if threads == 0 {
        return with_pool(f);
    }
    install_sized(threads, f)
}

/// Builds a `threads`-sized pool and installs `f` in it, running `f` plainly
/// if pool construction fails.
#[cfg(feature = "parallel")]
fn install_sized<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    match rayon::ThreadPoolBuilder::new().num_threads(threads).build() {
        Ok(pool) => pool.install(f),
        Err(_) => f(),
    }
}

/// Serialises unit tests that set **and assert** the process-global knob, so
/// concurrently running tests that also twiddle it cannot interleave between
/// a test's store and its load. (Result bitwise-equality never depends on the
/// knob, so tests that only *set* it stay correct either way — but they take
/// the lock too, to keep value assertions elsewhere stable.)
#[cfg(test)]
pub(crate) fn knob_lock() -> std::sync::MutexGuard<'static, ()> {
    static KNOB_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    KNOB_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Fills `buf[i] = f(i)` for every slot, recursively splitting the buffer
/// into `num_threads()` near-equal parts dispatched through [`rayon::join`]
/// — so the work runs on the *ambient* rayon pool (honouring scoped
/// per-query pools, unlike raw thread spawns) and allocates nothing (unlike
/// a parallel-iterator `collect`). The slot writes are disjoint and `f` is
/// pure, so the buffer ends up exactly as the sequential loop would leave
/// it. Used by B&B's per-instance window-sum staging with a
/// scratch-resident buffer.
#[cfg(feature = "parallel")]
pub(crate) fn fill_slots(buf: &mut [f64], f: impl Fn(usize) -> f64 + Sync) {
    let parts = num_threads().clamp(1, buf.len().max(1));
    fill_slots_rec(buf, 0, &f, parts);
}

#[cfg(feature = "parallel")]
fn fill_slots_rec<F: Fn(usize) -> f64 + Sync>(buf: &mut [f64], offset: usize, f: &F, parts: usize) {
    if parts <= 1 {
        for (k, slot) in buf.iter_mut().enumerate() {
            *slot = f(offset + k);
        }
        return;
    }
    let left_parts = parts / 2;
    // Proportional split keeps the leaf chunks near-equal.
    let mid = buf.len() * left_parts / parts;
    let (left, right) = buf.split_at_mut(mid);
    rayon::join(
        || fill_slots_rec(left, offset, f, left_parts),
        || fill_slots_rec(right, offset + mid, f, parts - left_parts),
    );
}

/// Splits `0..len` into at most `num_threads()` contiguous chunks (fewer when
/// `len` is small), preserving order.
#[cfg(feature = "parallel")]
pub(crate) fn chunk_bounds(len: usize) -> Vec<std::ops::Range<usize>> {
    let parts = num_threads().clamp(1, len.max(1));
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        if size > 0 {
            out.push(start..start + size);
            start += size;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knob_roundtrip() {
        let _guard = knob_lock();
        set_num_threads(3);
        assert_eq!(num_threads(), 3);
        set_num_threads(0);
        assert!(num_threads() >= 1);
    }

    #[test]
    fn thread_env_parsing() {
        assert_eq!(parse_thread_env(None), 0);
        assert_eq!(parse_thread_env(Some("")), 0);
        assert_eq!(parse_thread_env(Some("0")), 0);
        assert_eq!(parse_thread_env(Some("garbage")), 0);
        assert_eq!(parse_thread_env(Some("2")), 2);
        assert_eq!(parse_thread_env(Some(" 8 ")), 8);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn fill_slots_matches_sequential_fill() {
        let _guard = knob_lock();
        set_num_threads(4);
        for len in [0usize, 1, 3, 64, 257] {
            let mut buf = vec![f64::NAN; len];
            fill_slots(&mut buf, |i| (i * i) as f64);
            let want: Vec<f64> = (0..len).map(|i| (i * i) as f64).collect();
            assert_eq!(buf, want);
        }
        set_num_threads(0);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn chunks_partition_the_range() {
        for len in [0usize, 1, 5, 17, 1000] {
            let chunks = chunk_bounds(len);
            assert_eq!(chunks.iter().map(|c| c.len()).sum::<usize>(), len);
            let mut expected_start = 0;
            for c in &chunks {
                assert_eq!(c.start, expected_start);
                assert!(!c.is_empty());
                expected_start = c.end;
            }
            assert_eq!(expected_start, len);
        }
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn fan_out_covers_thread_count() {
        let _guard = knob_lock();
        set_num_threads(5);
        assert!(1 << fan_out_levels() >= 5);
        set_num_threads(0);
        assert!(1 << fan_out_levels() >= num_threads());
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn with_pool_bounds_ambient_parallelism() {
        let _guard = knob_lock();
        set_num_threads(2);
        let seen = with_pool(rayon::current_num_threads);
        assert_eq!(seen, 2);
        set_num_threads(0);
    }
}
