//! Angular sweep index: the d = 2 specialisation of the DUAL-MS algorithm.
//!
//! For two-dimensional data under weight ratio constraints `[l, h]`, the
//! paper (§V-D, Fig. 7a) observes that the two half-space queries issued for
//! an instance `t` can be re-interpreted as a single *continuous angular
//! range query* around `t`: every other instance `s` is represented by the
//! angle of the vector `s − t`, and the instances that F-dominate `t` are
//! exactly those whose angle falls in the wedge determined by the two extreme
//! slopes `−l` and `−h`.
//!
//! The index stores, for one reference instance, the angles of all other
//! instances grouped by uncertain object, sorted, with prefix sums of their
//! existence probabilities. A (possibly wrapping) angular range query then
//! returns the dominated probability mass per object in
//! `O(Σ_j log n_j) = O(m log n)` — and the whole preprocessing is `O(n log n)`
//! per reference instance, which is why the paper reports a large
//! preprocessing cost for DUAL-MS on IIP while its query time is tiny.

use std::f64::consts::TAU;

/// One angular item: direction of `s − t`, the object `s` belongs to, and
/// `p(s)`.
#[derive(Clone, Copy, Debug)]
pub struct AngularItem {
    /// Angle in radians; any finite value is accepted and normalised to
    /// `[0, 2π)`.
    pub angle: f64,
    /// Object identifier (dense, `< num_objects`).
    pub object: usize,
    /// Weight (existence probability).
    pub weight: f64,
}

/// Per-reference-instance angular index with per-object prefix sums.
#[derive(Clone, Debug)]
pub struct AngularSweepIndex {
    /// For each object: sorted angles.
    angles: Vec<Vec<f64>>,
    /// For each object: prefix sums of weights aligned with `angles`
    /// (`prefix[i]` = sum of the first `i` weights).
    prefix: Vec<Vec<f64>>,
}

impl AngularSweepIndex {
    /// Builds the index for `num_objects` objects from angular items.
    pub fn build(num_objects: usize, items: impl IntoIterator<Item = AngularItem>) -> Self {
        let mut per_object: Vec<Vec<(f64, f64)>> = vec![Vec::new(); num_objects];
        for item in items {
            assert!(item.object < num_objects, "object id out of range");
            per_object[item.object].push((normalize_angle(item.angle), item.weight));
        }
        let mut angles = Vec::with_capacity(num_objects);
        let mut prefix = Vec::with_capacity(num_objects);
        for mut list in per_object {
            list.sort_unstable_by(|a, b| {
                a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut a = Vec::with_capacity(list.len());
            let mut p = Vec::with_capacity(list.len() + 1);
            p.push(0.0);
            let mut acc = 0.0;
            for (angle, w) in list {
                a.push(angle);
                acc += w;
                p.push(acc);
            }
            angles.push(a);
            prefix.push(p);
        }
        Self { angles, prefix }
    }

    /// Number of objects the index was built over.
    pub fn num_objects(&self) -> usize {
        self.angles.len()
    }

    /// Total weight stored for one object.
    pub fn object_total(&self, object: usize) -> f64 {
        *self.prefix[object].last().unwrap_or(&0.0)
    }

    /// Sum of weights of one object's items whose angle lies in the closed
    /// range `[lo, hi]` (angles are normalised; if `lo > hi` after
    /// normalisation the range wraps through `0`).
    pub fn object_sum_in_range(&self, object: usize, lo: f64, hi: f64) -> f64 {
        let lo = normalize_angle(lo);
        let hi = normalize_angle(hi);
        if lo <= hi {
            self.sum_within(object, lo, hi)
        } else {
            self.sum_within(object, lo, TAU) + self.sum_within(object, 0.0, hi)
        }
    }

    /// Per-object sums over the angular range (see
    /// [`Self::object_sum_in_range`]).
    pub fn sums_in_range(&self, lo: f64, hi: f64) -> Vec<f64> {
        (0..self.num_objects())
            .map(|j| self.object_sum_in_range(j, lo, hi))
            .collect()
    }

    /// Sum of weights with angle in `[lo, hi]`, `lo ≤ hi`, no wrapping.
    fn sum_within(&self, object: usize, lo: f64, hi: f64) -> f64 {
        let angles = &self.angles[object];
        let prefix = &self.prefix[object];
        let start = angles.partition_point(|&a| a < lo - ANGLE_EPS);
        let end = angles.partition_point(|&a| a <= hi + ANGLE_EPS);
        prefix[end] - prefix[start]
    }
}

/// Tolerance used when comparing angles: points that lie exactly on a query
/// boundary (the "on the hyperplane" case of the paper) must be included.
const ANGLE_EPS: f64 = 1e-12;

/// Normalises an angle into `[0, 2π)`.
pub fn normalize_angle(angle: f64) -> f64 {
    let mut a = angle % TAU;
    if a < 0.0 {
        a += TAU;
    }
    if a >= TAU {
        a -= TAU;
    }
    a
}

/// The angular wedge (as a `[lo, hi]` range of directions of `s − t`) that
/// characterises `s ≺_F t` for 2-d weight ratio constraints `[l, h]`:
/// the directions `u` with `u · (l, 1) ≤ 0` and `u · (h, 1) ≤ 0`.
///
/// Returns `(lo, hi)` with `lo ≤ hi` in radians (the wedge never wraps for
/// `0 ≤ l ≤ h` because it always contains the direction `(0, −1)` i.e.
/// `3π/2`).
pub fn dominance_wedge(l: f64, h: f64) -> (f64, f64) {
    assert!(l >= 0.0 && l <= h, "invalid ratio range");
    // u · (l, 1) ≤ 0 describes the closed half-plane of directions
    // θ ∈ [α_l + π/2, α_l + 3π/2] where α_l = atan2(1, l) ∈ (0, π/2].
    // The intersection for l ≤ h is [α_l + π/2, α_h + 3π/2].
    let alpha_l = 1.0f64.atan2(l);
    let alpha_h = 1.0f64.atan2(h);
    (
        alpha_l + std::f64::consts::FRAC_PI_2,
        alpha_h + 3.0 * std::f64::consts::FRAC_PI_2,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn normalisation() {
        assert!((normalize_angle(-FRAC_PI_2) - 3.0 * FRAC_PI_2).abs() < 1e-12);
        assert!((normalize_angle(TAU + 0.1) - 0.1).abs() < 1e-12);
        assert_eq!(normalize_angle(0.0), 0.0);
    }

    #[test]
    fn range_queries_with_and_without_wrap() {
        let items = vec![
            AngularItem {
                angle: 0.1,
                object: 0,
                weight: 1.0,
            },
            AngularItem {
                angle: PI,
                object: 0,
                weight: 2.0,
            },
            AngularItem {
                angle: 6.0,
                object: 0,
                weight: 4.0,
            },
            AngularItem {
                angle: 0.2,
                object: 1,
                weight: 8.0,
            },
        ];
        let idx = AngularSweepIndex::build(2, items);
        assert_eq!(idx.num_objects(), 2);
        assert!((idx.object_total(0) - 7.0).abs() < 1e-12);
        // Plain range.
        assert!((idx.object_sum_in_range(0, 0.0, PI) - 3.0).abs() < 1e-12);
        // Wrapping range from 5.5 through 0 to 0.15.
        assert!((idx.object_sum_in_range(0, 5.5, 0.15) - 5.0).abs() < 1e-12);
        // Per-object sums.
        let sums = idx.sums_in_range(0.0, 0.5);
        assert!((sums[0] - 1.0).abs() < 1e-12);
        assert!((sums[1] - 8.0).abs() < 1e-12);
    }

    #[test]
    fn boundary_angles_are_included() {
        let items = vec![AngularItem {
            angle: 1.0,
            object: 0,
            weight: 3.0,
        }];
        let idx = AngularSweepIndex::build(1, items);
        assert!((idx.object_sum_in_range(0, 1.0, 2.0) - 3.0).abs() < 1e-12);
        assert!((idx.object_sum_in_range(0, 0.0, 1.0) - 3.0).abs() < 1e-12);
        assert!((idx.object_sum_in_range(0, 1.1, 2.0)).abs() < 1e-12);
    }

    #[test]
    fn dominance_wedge_matches_direct_test() {
        // For every direction θ, membership of the wedge must agree with the
        // two half-plane conditions u·(l,1) ≤ 0 and u·(h,1) ≤ 0.
        let (l, h) = (0.5, 2.0);
        let (lo, hi) = dominance_wedge(l, h);
        assert!(lo < hi);
        for k in 0..720 {
            let theta = k as f64 * TAU / 720.0;
            let u = (theta.cos(), theta.sin());
            let cond = u.0 * l + u.1 <= 1e-12 && u.0 * h + u.1 <= 1e-12;
            let theta_n = normalize_angle(theta);
            let in_wedge = if lo <= hi {
                theta_n >= lo - 1e-9 && theta_n <= hi + 1e-9
            } else {
                theta_n >= lo - 1e-9 || theta_n <= hi + 1e-9
            };
            // Allow boundary disagreement within numerical tolerance.
            if (u.0 * l + u.1).abs() > 1e-6 && (u.0 * h + u.1).abs() > 1e-6 {
                assert_eq!(cond, in_wedge, "θ = {theta}");
            }
        }
    }

    #[test]
    fn wedge_for_degenerate_ratio() {
        // l = h = 1: the wedge is the half-plane below the anti-diagonal,
        // spanning exactly π.
        let (lo, hi) = dominance_wedge(1.0, 1.0);
        assert!((hi - lo - PI).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn invalid_object_id_panics() {
        let _ = AngularSweepIndex::build(
            1,
            vec![AngularItem {
                angle: 0.0,
                object: 3,
                weight: 1.0,
            }],
        );
    }
}
