//! Spatial index substrate for the ARSP reproduction.
//!
//! The paper's algorithms lean on four indexing building blocks, all of which
//! are implemented here from scratch:
//!
//! * [`rtree::RTree`] — a static, STR bulk-loaded R-tree over the instance
//!   set `I`. Algorithm 2 (B&B) traverses it in best-first order.
//! * [`aggregate_rtree::AggregateRTree`] — a dynamic R-tree whose nodes carry
//!   the sum of the weights (existence probabilities) stored underneath; it
//!   answers the window queries `σ[j] = Σ_{s ∈ T_j, SV(s) ⪯ SV(t)} p(s)` of
//!   Algorithm 2 and, more generally, weight sums over any *downward-closed*
//!   region (see [`region::DominanceRegion`]).
//! * [`kdtree::KdTree`] — a static median-split kd-tree with per-node weight
//!   aggregates; used by the non-fused KDTT variant and by the eclipse
//!   DUAL-S existence queries.
//! * [`angular::AngularSweepIndex`] — the d = 2 specialisation of §IV-B/§V-D:
//!   instances sorted by angle around a reference instance with per-object
//!   prefix sums, answering (possibly wrapping) angular range queries.
//!
//! The indexes know nothing about uncertain objects or rskyline semantics;
//! they operate on [`PointEntry`] values (id, object id, weight, coordinates)
//! and downward-closed query regions.

pub mod aggregate_rtree;
pub mod angular;
pub mod kdtree;
pub mod region;
pub mod rtree;

pub use aggregate_rtree::AggregateRTree;
pub use angular::AngularSweepIndex;
pub use kdtree::KdTree;
pub use region::{DominanceRegion, FDominatorsOf, WindowTo};
pub use rtree::{NodeContent, NodeId, RTree};

/// A shareable, immutable handle to a bulk-loaded [`RTree`]. The tree is
/// read-only after construction, so a session-level cache can hand the same
/// handle to any number of concurrent queries.
pub type SharedRTree = std::sync::Arc<RTree>;

/// A shareable handle to a per-object forest of [`AggregateRTree`]s (the
/// layout the DUAL algorithm queries: one tree per uncertain object).
pub type SharedAggregateForest = std::sync::Arc<Vec<AggregateRTree>>;

/// A point stored in an index: an instance id, the id of the uncertain object
/// it belongs to, its weight (existence probability) and its coordinates.
#[derive(Clone, Debug, PartialEq)]
pub struct PointEntry {
    /// Globally unique instance identifier.
    pub id: usize,
    /// Identifier of the uncertain object the instance belongs to.
    pub object: usize,
    /// Weight associated with the entry (existence probability `p(t)`; 1.0
    /// for certain data).
    pub weight: f64,
    /// Coordinates of the entry.
    pub coords: Vec<f64>,
}

impl PointEntry {
    /// Creates a new entry.
    pub fn new(id: usize, object: usize, weight: f64, coords: Vec<f64>) -> Self {
        Self {
            id,
            object,
            weight,
            coords,
        }
    }

    /// Dimensionality of the entry.
    pub fn dim(&self) -> usize {
        self.coords.len()
    }
}

#[cfg(test)]
pub(crate) mod test_util {
    use super::PointEntry;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    /// Deterministic random entries for index tests.
    pub fn random_entries(n: usize, dim: usize, objects: usize, seed: u64) -> Vec<PointEntry> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|id| {
                let coords = (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect();
                let object = rng.gen_range(0..objects);
                let weight = rng.gen_range(0.01..1.0);
                PointEntry::new(id, object, weight, coords)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_entry_accessors() {
        let e = PointEntry::new(3, 1, 0.5, vec![1.0, 2.0]);
        assert_eq!(e.dim(), 2);
        assert_eq!(e.id, 3);
        assert_eq!(e.object, 1);
        assert_eq!(e.weight, 0.5);
    }
}
