//! Spatial index substrate for the ARSP reproduction.
//!
//! The paper's algorithms lean on four indexing building blocks, all of which
//! are implemented here from scratch:
//!
//! * [`rtree::RTree`] — a static, STR bulk-loaded R-tree over the instance
//!   set `I`. Algorithm 2 (B&B) traverses it in best-first order.
//! * [`aggregate_rtree::AggregateRTree`] — a dynamic R-tree whose nodes carry
//!   the sum of the weights (existence probabilities) stored underneath; it
//!   answers the window queries `σ[j] = Σ_{s ∈ T_j, SV(s) ⪯ SV(t)} p(s)` of
//!   Algorithm 2 and, more generally, weight sums over any *downward-closed*
//!   region (see [`region::DominanceRegion`]).
//! * [`kdtree::KdTree`] — a static median-split kd-tree with per-node weight
//!   aggregates; used by the non-fused KDTT variant and by the eclipse
//!   DUAL-S existence queries.
//! * [`angular::AngularSweepIndex`] — the d = 2 specialisation of §IV-B/§V-D:
//!   instances sorted by angle around a reference instance with per-object
//!   prefix sums, answering (possibly wrapping) angular range queries.
//!
//! For dynamic datasets the [`delta`] module adds the glue between mutating
//! stores and these frozen arenas: the logarithmic-method [`DeltaPolicy`]
//! (when to fold an unindexed delta range back into the arenas) and the
//! incrementally maintained per-object [`DeltaForest`].
//!
//! The indexes know nothing about uncertain objects or rskyline semantics;
//! they operate on point entries (id, object id, weight, coordinates) and
//! downward-closed query regions. The static trees store their entries in the
//! columnar [`FlatEntries`] layout (one dim-strided coordinate array plus
//! parallel scalar columns) and their node structure in flat arenas whose
//! children are `(start, len)` ranges into a single shared index array — no
//! per-node heap allocations, so traversals stream contiguous memory.

#![deny(unsafe_code)]

pub mod aggregate_rtree;
pub mod angular;
pub mod delta;
pub mod kdtree;
pub mod region;
pub mod rtree;

pub use aggregate_rtree::AggregateRTree;
pub use angular::AngularSweepIndex;
pub use delta::{DeltaForest, DeltaPolicy};
pub use kdtree::KdTree;
pub use region::{DominanceRegion, FDominatorsOf, WindowTo};
pub use rtree::{NodeContent, NodeId, RTree};

/// A shareable, immutable handle to a bulk-loaded [`RTree`]. The tree is
/// read-only after construction, so a session-level cache can hand the same
/// handle to any number of concurrent queries.
pub type SharedRTree = std::sync::Arc<RTree>;

/// A shareable handle to a per-object forest of [`AggregateRTree`]s (the
/// layout the DUAL algorithm queries: one tree per uncertain object).
pub type SharedAggregateForest = std::sync::Arc<Vec<AggregateRTree>>;

/// A shareable, immutable handle to a bulk-loaded [`KdTree`]. Like
/// [`SharedRTree`], the arena tree is frozen after construction: every node
/// and entry lives in flat arrays that are only ever read, so an MVCC
/// snapshot can hand the same handle to any number of concurrent readers and
/// retire it (drop the arenas) only once the last reader lets go.
pub type SharedKdTree = std::sync::Arc<KdTree>;

/// A point stored in an index: an instance id, the id of the uncertain object
/// it belongs to, its weight (existence probability) and its coordinates.
#[derive(Clone, Debug, PartialEq)]
pub struct PointEntry {
    /// Globally unique instance identifier.
    pub id: usize,
    /// Identifier of the uncertain object the instance belongs to.
    pub object: usize,
    /// Weight associated with the entry (existence probability `p(t)`; 1.0
    /// for certain data).
    pub weight: f64,
    /// Coordinates of the entry.
    pub coords: Vec<f64>,
}

impl PointEntry {
    /// Creates a new entry.
    pub fn new(id: usize, object: usize, weight: f64, coords: Vec<f64>) -> Self {
        Self {
            id,
            object,
            weight,
            coords,
        }
    }

    /// Dimensionality of the entry.
    pub fn dim(&self) -> usize {
        self.coords.len()
    }
}

/// A borrowed view of one entry of a [`FlatEntries`] store — the columnar
/// counterpart of [`PointEntry`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EntryRef<'a> {
    /// Globally unique instance identifier.
    pub id: usize,
    /// Identifier of the owning uncertain object.
    pub object: usize,
    /// Weight (existence probability) of the entry.
    pub weight: f64,
    /// Borrowed coordinates of the entry.
    pub coords: &'a [f64],
}

/// The columnar entry store the static indexes are built over: one contiguous
/// dim-strided coordinate array plus parallel id/object/weight columns. Row
/// `pos` (the *entry position*, the index the tree nodes reference) has
/// coordinates `coords()[pos*dim .. (pos+1)*dim]`.
///
/// Purely a layout change versus `Vec<PointEntry>`: values are copied
/// bit-for-bit, so queries over either representation agree exactly.
#[derive(Clone, Debug, Default)]
pub struct FlatEntries {
    dim: usize,
    ids: Vec<u32>,
    objects: Vec<u32>,
    weights: Vec<f64>,
    coords: Vec<f64>,
}

impl FlatEntries {
    /// Creates an empty store of the given dimensionality.
    pub fn new(dim: usize) -> Self {
        Self {
            dim,
            ..Self::default()
        }
    }

    /// Creates an empty store with room for `n` entries.
    pub fn with_capacity(dim: usize, n: usize) -> Self {
        Self {
            dim,
            ids: Vec::with_capacity(n),
            objects: Vec::with_capacity(n),
            weights: Vec::with_capacity(n),
            coords: Vec::with_capacity(n * dim),
        }
    }

    /// Columnarises a row-oriented entry vector (entry order preserved).
    pub fn from_entries(entries: &[PointEntry]) -> Self {
        let dim = entries.first().map_or(0, |e| e.dim());
        let mut flat = Self::with_capacity(dim, entries.len());
        for e in entries {
            flat.push(e.id, e.object, e.weight, &e.coords);
        }
        flat
    }

    /// Appends one entry.
    ///
    /// # Panics
    /// Panics if the coordinates have the wrong dimensionality, or if `id` /
    /// `object` exceed the columnar store's `u32` range (the old
    /// `Vec<PointEntry>` layout stored `usize`; failing fast here beats a
    /// silently wrapped id corrupting result indexing downstream).
    pub fn push(&mut self, id: usize, object: usize, weight: f64, coords: &[f64]) {
        assert_eq!(coords.len(), self.dim, "entry dimensionality mismatch");
        assert!(id <= u32::MAX as usize, "entry id {id} exceeds u32 range");
        assert!(
            object <= u32::MAX as usize,
            "object id {object} exceeds u32 range"
        );
        self.ids.push(id as u32);
        self.objects.push(object as u32);
        self.weights.push(weight);
        self.coords.extend_from_slice(coords);
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` when the store holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Coordinate stride (dimensionality).
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The whole dim-strided coordinate column.
    #[inline]
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// Coordinates of the entry at `pos`.
    #[inline]
    pub fn coords_of(&self, pos: usize) -> &[f64] {
        &self.coords[pos * self.dim..(pos + 1) * self.dim]
    }

    /// Instance id of the entry at `pos`.
    #[inline]
    pub fn id(&self, pos: usize) -> usize {
        self.ids[pos] as usize
    }

    /// Owning object of the entry at `pos`.
    #[inline]
    pub fn object(&self, pos: usize) -> usize {
        self.objects[pos] as usize
    }

    /// Weight of the entry at `pos`.
    #[inline]
    pub fn weight(&self, pos: usize) -> f64 {
        self.weights[pos]
    }

    /// Borrowed view of the entry at `pos`.
    #[inline]
    pub fn get(&self, pos: usize) -> EntryRef<'_> {
        EntryRef {
            id: self.id(pos),
            object: self.object(pos),
            weight: self.weight(pos),
            coords: self.coords_of(pos),
        }
    }
}

#[cfg(test)]
pub(crate) mod test_util {
    use super::PointEntry;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    /// Deterministic random entries for index tests.
    pub fn random_entries(n: usize, dim: usize, objects: usize, seed: u64) -> Vec<PointEntry> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|id| {
                let coords = (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect();
                let object = rng.gen_range(0..objects);
                let weight = rng.gen_range(0.01..1.0);
                PointEntry::new(id, object, weight, coords)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_entry_accessors() {
        let e = PointEntry::new(3, 1, 0.5, vec![1.0, 2.0]);
        assert_eq!(e.dim(), 2);
        assert_eq!(e.id, 3);
        assert_eq!(e.object, 1);
        assert_eq!(e.weight, 0.5);
    }

    #[test]
    fn flat_entries_mirror_point_entries() {
        let entries = vec![
            PointEntry::new(7, 2, 0.5, vec![1.0, 2.0]),
            PointEntry::new(3, 0, 0.25, vec![4.0, 5.0]),
        ];
        let flat = FlatEntries::from_entries(&entries);
        assert_eq!(flat.len(), 2);
        assert!(!flat.is_empty());
        assert_eq!(flat.dim(), 2);
        assert_eq!(flat.coords(), &[1.0, 2.0, 4.0, 5.0]);
        for (pos, e) in entries.iter().enumerate() {
            let r = flat.get(pos);
            assert_eq!(r.id, e.id);
            assert_eq!(r.object, e.object);
            assert_eq!(r.weight, e.weight);
            assert_eq!(r.coords, e.coords.as_slice());
        }
        assert!(FlatEntries::from_entries(&[]).is_empty());
        assert_eq!(FlatEntries::new(3).dim(), 3);
    }
}
