//! Downward-closed query regions.
//!
//! Every aggregate query the ARSP algorithms issue — "how much probability
//! mass F-dominates this instance?", "how much mass lies in the window
//! `[origin, q]`?" — asks for the weight of points inside a *downward-closed*
//! region: if a point belongs to the region then so does every point that
//! (coordinate-wise) dominates it. Downward closure is what makes MBR-corner
//! pruning sound:
//!
//! * if the **maximum** corner of an MBR is inside the region, every point of
//!   the MBR is (the whole subtree can be accounted with its aggregate),
//! * if the **minimum** corner is outside, no point of the MBR can be inside
//!   (the subtree can be skipped).
//!
//! The two region kinds used by the algorithms are provided here; the spatial
//! indexes are generic over the trait so the same traversal code serves both.

use arsp_geometry::fdom::FDominance;
use arsp_geometry::point::dominates;
use arsp_geometry::Mbr;

/// A downward-closed region of the data space.
pub trait DominanceRegion {
    /// Returns `true` when every point of the MBR lies inside the region.
    fn covers(&self, mbr: &Mbr) -> bool;

    /// Returns `true` when some point of the MBR *may* lie inside the region;
    /// returning `false` guarantees the MBR is disjoint from the region.
    fn may_intersect(&self, mbr: &Mbr) -> bool;

    /// Exact membership test for a single point.
    fn contains(&self, coords: &[f64]) -> bool;
}

/// The window `{p | p ⪯ q}` (all points coordinate-wise dominating nothing —
/// i.e. dominated *region of the origin side*): the "window query with the
/// origin and `SV(t)`" of Algorithm 2.
#[derive(Clone, Debug)]
pub struct WindowTo<'a> {
    corner: &'a [f64],
}

impl<'a> WindowTo<'a> {
    /// Creates the window `[−∞, corner]` (in the "lower is better" sense:
    /// every point that dominates `corner`).
    pub fn new(corner: &'a [f64]) -> Self {
        Self { corner }
    }
}

impl DominanceRegion for WindowTo<'_> {
    fn covers(&self, mbr: &Mbr) -> bool {
        dominates(mbr.max().coords(), self.corner)
    }

    fn may_intersect(&self, mbr: &Mbr) -> bool {
        dominates(mbr.min().coords(), self.corner)
    }

    fn contains(&self, coords: &[f64]) -> bool {
        dominates(coords, self.corner)
    }
}

/// The set of points that F-dominate a fixed target instance, under any
/// [`FDominance`] test. Downward-closed because every scoring function in `F`
/// is monotone.
#[derive(Clone, Debug)]
pub struct FDominatorsOf<'a, F: FDominance> {
    fdom: &'a F,
    target: &'a [f64],
}

impl<'a, F: FDominance> FDominatorsOf<'a, F> {
    /// Creates the region `{s | s ≺_F target}` (at the coordinate level, i.e.
    /// including points coordinate-identical to the target).
    pub fn new(fdom: &'a F, target: &'a [f64]) -> Self {
        Self { fdom, target }
    }
}

impl<F: FDominance> DominanceRegion for FDominatorsOf<'_, F> {
    fn covers(&self, mbr: &Mbr) -> bool {
        self.fdom.f_dominates(mbr.max().coords(), self.target)
    }

    fn may_intersect(&self, mbr: &Mbr) -> bool {
        self.fdom.f_dominates(mbr.min().coords(), self.target)
    }

    fn contains(&self, coords: &[f64]) -> bool {
        self.fdom.f_dominates(coords, self.target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arsp_geometry::constraints::WeightRatio;
    use arsp_geometry::fdom::WeightRatioFDominance;
    use arsp_geometry::Point;

    fn mbr(min: &[f64], max: &[f64]) -> Mbr {
        Mbr::new(Point::from(min), Point::from(max))
    }

    #[test]
    fn window_region_semantics() {
        let corner = [5.0, 5.0];
        let w = WindowTo::new(&corner);
        assert!(w.contains(&[5.0, 5.0]));
        assert!(w.contains(&[1.0, 2.0]));
        assert!(!w.contains(&[6.0, 1.0]));
        assert!(w.covers(&mbr(&[0.0, 0.0], &[4.0, 4.0])));
        assert!(!w.covers(&mbr(&[0.0, 0.0], &[6.0, 4.0])));
        assert!(w.may_intersect(&mbr(&[0.0, 0.0], &[6.0, 4.0])));
        assert!(!w.may_intersect(&mbr(&[6.0, 0.0], &[8.0, 4.0])));
    }

    #[test]
    fn fdominators_region_semantics() {
        let ratio = WeightRatio::uniform(2, 0.5, 2.0);
        let fdom = WeightRatioFDominance::new(ratio);
        let target = [9.0, 12.0];
        let r = FDominatorsOf::new(&fdom, &target);
        // From the paper's Example 3: (6, 12) and (11, 8) both F-dominate t2,3.
        assert!(r.contains(&[6.0, 12.0]));
        assert!(r.contains(&[11.0, 8.0]));
        assert!(!r.contains(&[20.0, 20.0]));
        // An MBR whose max corner F-dominates the target is fully covered.
        let inside = mbr(&[0.0, 0.0], &[6.0, 12.0]);
        assert!(r.covers(&inside));
        assert!(r.may_intersect(&inside));
        // An MBR whose min corner does not F-dominate the target is disjoint.
        let outside = mbr(&[20.0, 20.0], &[30.0, 30.0]);
        assert!(!r.may_intersect(&outside));
    }

    #[test]
    fn cover_implies_may_intersect() {
        let corner = [3.0, 3.0, 3.0];
        let w = WindowTo::new(&corner);
        let boxes = [
            mbr(&[0.0, 0.0, 0.0], &[1.0, 1.0, 1.0]),
            mbr(&[0.0, 0.0, 0.0], &[5.0, 1.0, 1.0]),
            mbr(&[4.0, 4.0, 4.0], &[5.0, 5.0, 5.0]),
        ];
        for b in &boxes {
            if w.covers(b) {
                assert!(w.may_intersect(b));
            }
        }
    }
}
