//! A static kd-tree with per-node weight aggregates.
//!
//! Two consumers:
//!
//! * the **KDTT** variant of Algorithm 1 first builds the whole kd-tree over
//!   the score-space instance set `I'` and then performs the pre-order
//!   traversal of Afshani et al.'s kd-ASP; the tree therefore exposes its
//!   node structure,
//! * the **eclipse DUAL-S** algorithm of §V-D asks existence queries ("is
//!   there any point inside the F-dominance region of `t`, other than `t`
//!   itself?") against the skyline of a certain dataset.
//!
//! Layout: entries live in a columnar [`FlatEntries`] store, leaf membership
//! is a `(start, len)` range into one shared `leaf_items` array (no per-leaf
//! `Vec`), and node MBRs/weight aggregates are derived **bottom-up** during
//! construction — leaves scan only their own entries and internal nodes take
//! the union/sum of their two children, so the build does `O(n·d)` coordinate
//! work per level instead of rescanning the full subtree at every recursion
//! depth.

use crate::region::DominanceRegion;
use crate::{EntryRef, FlatEntries, PointEntry};
use arsp_geometry::Mbr;

/// Identifier of a node in the kd-tree arena.
pub type KdNodeId = usize;

/// Children of a kd-tree node.
#[derive(Clone, Copy, Debug)]
pub enum KdNodeContent {
    /// Internal node: split dimension plus the two children.
    Internal {
        /// Dimension along which the node's points were split.
        split_dim: usize,
        /// Child holding the lower half.
        left: KdNodeId,
        /// Child holding the upper half.
        right: KdNodeId,
    },
    /// Leaf node: a `(start, len)` range into [`KdTree::leaf_items`].
    Leaf {
        /// First slot of the leaf's range in the shared item array.
        start: u32,
        /// Number of entries in the leaf.
        len: u32,
    },
}

/// A kd-tree node.
#[derive(Clone, Debug)]
pub struct KdNode {
    mbr: Mbr,
    weight_sum: f64,
    size: usize,
    content: KdNodeContent,
}

impl KdNode {
    /// Minimum bounding rectangle of the points under this node.
    pub fn mbr(&self) -> &Mbr {
        &self.mbr
    }

    /// Sum of the weights of the points under this node.
    pub fn weight_sum(&self) -> f64 {
        self.weight_sum
    }

    /// Number of points under this node.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Children of this node.
    pub fn content(&self) -> &KdNodeContent {
        &self.content
    }
}

/// A static, median-split kd-tree over weighted point entries.
#[derive(Clone, Debug)]
pub struct KdTree {
    entries: FlatEntries,
    nodes: Vec<KdNode>,
    /// Shared leaf-membership arena; each leaf owns one contiguous range of
    /// entry positions.
    leaf_items: Vec<u32>,
    root: Option<KdNodeId>,
    leaf_size: usize,
}

impl KdTree {
    /// Builds a kd-tree whose leaves hold a single entry (the granularity the
    /// paper's kd-ASP\* descends to).
    pub fn build(entries: Vec<PointEntry>) -> Self {
        Self::build_with_leaf_size(entries, 1)
    }

    /// Builds a kd-tree with a custom leaf capacity (≥ 1).
    pub fn build_with_leaf_size(entries: Vec<PointEntry>, leaf_size: usize) -> Self {
        Self::build_flat_with_leaf_size(FlatEntries::from_entries(&entries), leaf_size)
    }

    /// Builds a kd-tree directly over a columnar entry store (no row-oriented
    /// intermediate).
    pub fn build_flat(entries: FlatEntries) -> Self {
        Self::build_flat_with_leaf_size(entries, 1)
    }

    /// [`KdTree::build_flat`] with a custom leaf capacity (≥ 1).
    pub fn build_flat_with_leaf_size(entries: FlatEntries, leaf_size: usize) -> Self {
        assert!(leaf_size >= 1);
        let n = entries.len();
        let mut tree = Self {
            entries,
            nodes: Vec::with_capacity(if n == 0 { 0 } else { 2 * n }),
            leaf_items: Vec::with_capacity(n),
            root: None,
            leaf_size,
        };
        if n == 0 {
            return tree;
        }
        let mut order: Vec<u32> = (0..n as u32).collect();
        let root = tree.build_rec(&mut order, 0);
        tree.root = Some(root);
        tree
    }

    fn build_rec(&mut self, order: &mut [u32], depth: usize) -> KdNodeId {
        if order.len() <= self.leaf_size {
            // Leaf: the only place coordinates are scanned during the build.
            let dim = self.entries.dim();
            let mbr = Mbr::from_flat_rows(
                self.entries.coords(),
                dim,
                order.iter().map(|&i| i as usize),
            )
            .expect("non-empty point set");
            let weight_sum: f64 = order.iter().map(|&i| self.entries.weight(i as usize)).sum();
            let start = self.leaf_items.len() as u32;
            self.leaf_items.extend_from_slice(order);
            self.nodes.push(KdNode {
                mbr,
                weight_sum,
                size: order.len(),
                content: KdNodeContent::Leaf {
                    start,
                    len: order.len() as u32,
                },
            });
            return self.nodes.len() - 1;
        }

        // The weight aggregate is summed linearly over the (pre-split) slice
        // — floating-point addition is order-sensitive, and this is the exact
        // accumulation order the pre-arena build used, keeping
        // `sum_weights_in` aggregates bit-for-bit stable across the layout
        // change. Weights are a single contiguous column, so this costs one
        // streaming pass per level (unlike the coordinate rescans the
        // bottom-up MBRs eliminate).
        let weight_sum: f64 = order.iter().map(|&i| self.entries.weight(i as usize)).sum();
        let split_dim = depth % self.entries.dim();
        let mid = order.len() / 2;
        {
            let coords = self.entries.coords();
            let dim = self.entries.dim();
            order.select_nth_unstable_by(mid, |&a, &b| {
                coords[a as usize * dim + split_dim]
                    .partial_cmp(&coords[b as usize * dim + split_dim])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
        }
        let size = order.len();
        let (low, high) = order.split_at_mut(mid);
        // `mid >= 1` because `order.len() > leaf_size >= 1`, so both halves are
        // non-empty.
        let left = self.build_rec(low, depth + 1);
        let right = self.build_rec(high, depth + 1);
        // Bounds come from the children — min/max unions are exact, so the
        // MBR is bit-identical to a full subtree rescan without one.
        let mbr = self.nodes[left].mbr.union(&self.nodes[right].mbr);
        self.nodes.push(KdNode {
            mbr,
            weight_sum,
            size,
            content: KdNodeContent::Internal {
                split_dim,
                left,
                right,
            },
        });
        self.nodes.len() - 1
    }

    /// Root node id (`None` for an empty tree).
    pub fn root(&self) -> Option<KdNodeId> {
        self.root
    }

    /// Access a node by id.
    pub fn node(&self, id: KdNodeId) -> &KdNode {
        &self.nodes[id]
    }

    /// The columnar entry store, in original entry order.
    pub fn entries(&self) -> &FlatEntries {
        &self.entries
    }

    /// The entry positions of a leaf's `(start, len)` range.
    #[inline]
    pub fn leaf_items(&self, start: u32, len: u32) -> &[u32] {
        &self.leaf_items[start as usize..(start + len) as usize]
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Height of the tree.
    pub fn height(&self) -> usize {
        fn rec(tree: &KdTree, id: KdNodeId) -> usize {
            match tree.nodes[id].content {
                KdNodeContent::Leaf { .. } => 1,
                KdNodeContent::Internal { left, right, .. } => {
                    1 + rec(tree, left).max(rec(tree, right))
                }
            }
        }
        self.root.map_or(0, |r| rec(self, r))
    }

    /// Calls `f` for every entry inside the downward-closed region.
    pub fn for_each_in<R: DominanceRegion>(&self, region: &R, mut f: impl FnMut(EntryRef<'_>)) {
        let Some(root) = self.root else { return };
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id];
            if !region.may_intersect(&node.mbr) {
                continue;
            }
            match node.content {
                KdNodeContent::Internal { left, right, .. } => {
                    stack.push(left);
                    stack.push(right);
                }
                KdNodeContent::Leaf { start, len } => {
                    for &ei in self.leaf_items(start, len) {
                        let e = self.entries.get(ei as usize);
                        if region.contains(e.coords) {
                            f(e);
                        }
                    }
                }
            }
        }
    }

    /// Sum of weights of entries inside the region, using node aggregates for
    /// fully covered subtrees.
    pub fn sum_weights_in<R: DominanceRegion>(&self, region: &R) -> f64 {
        fn rec<R: DominanceRegion>(tree: &KdTree, id: KdNodeId, region: &R) -> f64 {
            let node = &tree.nodes[id];
            if !region.may_intersect(&node.mbr) {
                return 0.0;
            }
            if region.covers(&node.mbr) {
                return node.weight_sum;
            }
            match node.content {
                KdNodeContent::Internal { left, right, .. } => {
                    rec(tree, left, region) + rec(tree, right, region)
                }
                KdNodeContent::Leaf { start, len } => tree
                    .leaf_items(start, len)
                    .iter()
                    .filter(|&&ei| region.contains(tree.entries.coords_of(ei as usize)))
                    .map(|&ei| tree.entries.weight(ei as usize))
                    .sum(),
            }
        }
        self.root.map_or(0.0, |r| rec(self, r, region))
    }

    /// Returns `true` when some entry with id different from `skip_id` lies
    /// inside the region.
    pub fn any_in<R: DominanceRegion>(&self, region: &R, skip_id: Option<usize>) -> bool {
        let Some(root) = self.root else { return false };
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id];
            if !region.may_intersect(&node.mbr) {
                continue;
            }
            // Covered subtrees contain at least one qualifying point unless
            // the subtree holds only the excluded entry.
            if region.covers(&node.mbr) && (skip_id.is_none() || node.size > 1) {
                return true;
            }
            match node.content {
                KdNodeContent::Internal { left, right, .. } => {
                    stack.push(left);
                    stack.push(right);
                }
                KdNodeContent::Leaf { start, len } => {
                    for &ei in self.leaf_items(start, len) {
                        if Some(self.entries.id(ei as usize)) == skip_id {
                            continue;
                        }
                        if region.contains(self.entries.coords_of(ei as usize)) {
                            return true;
                        }
                    }
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::WindowTo;
    use crate::test_util::random_entries;

    #[test]
    fn empty_and_single() {
        let t = KdTree::build(Vec::new());
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        let corner = [1.0];
        assert_eq!(t.sum_weights_in(&WindowTo::new(&corner)), 0.0);

        let t = KdTree::build(vec![PointEntry::new(0, 0, 0.7, vec![0.5, 0.5])]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.height(), 1);
        let corner = [0.6, 0.6];
        assert!((t.sum_weights_in(&WindowTo::new(&corner)) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn balanced_height() {
        let entries = random_entries(1024, 3, 20, 2);
        let t = KdTree::build(entries);
        // A median-split kd-tree over 1024 points with unit leaves has height
        // exactly 11.
        assert_eq!(t.height(), 11);
    }

    #[test]
    fn node_invariants() {
        let entries = random_entries(300, 2, 10, 4);
        let t = KdTree::build_with_leaf_size(entries, 4);
        let mut stack = vec![t.root().unwrap()];
        let mut leaf_slots = 0;
        while let Some(id) = stack.pop() {
            let node = t.node(id);
            match *node.content() {
                KdNodeContent::Internal { left, right, .. } => {
                    let (l, r) = (t.node(left), t.node(right));
                    assert_eq!(node.size(), l.size() + r.size());
                    assert!((node.weight_sum() - (l.weight_sum() + r.weight_sum())).abs() < 1e-9);
                    assert!(node.mbr().contains_mbr(l.mbr()));
                    assert!(node.mbr().contains_mbr(r.mbr()));
                    stack.push(left);
                    stack.push(right);
                }
                KdNodeContent::Leaf { start, len } => {
                    let idx = t.leaf_items(start, len);
                    assert!(idx.len() <= 4);
                    assert_eq!(node.size(), idx.len());
                    for &ei in idx {
                        assert!(node.mbr().contains(t.entries().coords_of(ei as usize)));
                    }
                    leaf_slots += idx.len();
                }
            }
        }
        // Leaf ranges partition the shared item arena.
        assert_eq!(leaf_slots, t.len());
    }

    #[test]
    fn window_sum_matches_brute_force() {
        let entries = random_entries(700, 4, 30, 8);
        let t = KdTree::build_with_leaf_size(entries.clone(), 2);
        for corner in [
            vec![0.5, 0.5, 0.5, 0.5],
            vec![0.9, 0.1, 0.8, 0.2],
            vec![1.0, 1.0, 1.0, 1.0],
        ] {
            let want: f64 = entries
                .iter()
                .filter(|e| e.coords.iter().zip(&corner).all(|(c, q)| c <= q))
                .map(|e| e.weight)
                .sum();
            let got = t.sum_weights_in(&WindowTo::new(&corner));
            assert!((got - want).abs() < 1e-9);
        }
    }

    #[test]
    fn for_each_and_any_with_skip() {
        let entries = vec![
            PointEntry::new(0, 0, 1.0, vec![0.1, 0.1]),
            PointEntry::new(1, 0, 1.0, vec![0.15, 0.12]),
            PointEntry::new(2, 1, 1.0, vec![0.9, 0.9]),
        ];
        let t = KdTree::build(entries);
        let corner = [0.2, 0.2];
        let mut ids = Vec::new();
        t.for_each_in(&WindowTo::new(&corner), |e| ids.push(e.id));
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1]);
        assert!(t.any_in(&WindowTo::new(&corner), Some(0)));
        let tight = [0.11, 0.11];
        assert!(t.any_in(&WindowTo::new(&tight), None));
        assert!(!t.any_in(&WindowTo::new(&tight), Some(0)));
    }

    #[test]
    fn flat_build_matches_row_oriented_build() {
        let entries = random_entries(257, 3, 12, 6);
        let via_rows = KdTree::build_with_leaf_size(entries.clone(), 2);
        let via_flat = KdTree::build_flat_with_leaf_size(FlatEntries::from_entries(&entries), 2);
        assert_eq!(via_rows.height(), via_flat.height());
        for corner in [vec![0.5, 0.5, 0.5], vec![0.8, 0.3, 0.6]] {
            let w = WindowTo::new(&corner);
            assert_eq!(
                via_rows.sum_weights_in(&w).to_bits(),
                via_flat.sum_weights_in(&w).to_bits()
            );
        }
    }
}
