//! A dynamic R-tree with per-node weight aggregates.
//!
//! Algorithm 2 (B&B) maintains one *aggregated R-tree* `R_i` per uncertain
//! object: as instances are processed in best-first order, their score-space
//! images `SV(t)` are inserted together with their existence probabilities,
//! and for every new instance `t` the algorithm asks each other object's tree
//! for the probability mass inside the window `[origin, SV(t)]`
//! (`σ[j] = Σ_{s∈T_j, SV(s) ⪯ SV(t)} p(s)`).
//!
//! The tree also answers weight sums over arbitrary downward-closed regions
//! ([`DominanceRegion`]), which is how the practical DUAL algorithm of §IV
//! computes per-object dominating mass under weight-ratio constraints without
//! the theoretical point-location structure (see DESIGN.md, substitutions).
//!
//! Implementation notes: quadratic-cost split heuristics are unnecessary at
//! the fanouts used here; nodes split along the dimension with the largest
//! spread at the median, which keeps the tree balanced enough for the
//! best-first workloads of the paper while keeping insertion simple and
//! predictable.

use crate::region::DominanceRegion;
use arsp_geometry::Mbr;
use arsp_geometry::Point;

/// Maximum number of children / leaf entries per node.
const MAX_ENTRIES: usize = 16;

/// A weighted point stored in the tree.
#[derive(Clone, Debug)]
struct AggEntry {
    coords: Vec<f64>,
    weight: f64,
}

#[derive(Clone, Debug)]
enum AggContent {
    Leaf(Vec<AggEntry>),
    Internal(Vec<usize>),
}

#[derive(Clone, Debug)]
struct AggNode {
    mbr: Mbr,
    weight_sum: f64,
    content: AggContent,
}

/// A dynamic aggregated R-tree over weighted points.
#[derive(Clone, Debug)]
pub struct AggregateRTree {
    dim: usize,
    nodes: Vec<AggNode>,
    root: Option<usize>,
    len: usize,
}

impl AggregateRTree {
    /// Creates an empty tree over `dim`-dimensional points.
    pub fn new(dim: usize) -> Self {
        assert!(dim >= 1);
        Self {
            dim,
            nodes: Vec::new(),
            root: None,
            len: 0,
        }
    }

    /// Empties the tree and re-targets it at `dim`-dimensional points,
    /// keeping the node arena's allocation for reuse across queries.
    pub fn reset(&mut self, dim: usize) {
        assert!(dim >= 1);
        self.dim = dim;
        self.nodes.clear();
        self.root = None;
        self.len = 0;
    }

    /// Number of points stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no point has been inserted yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total weight stored in the tree.
    pub fn total_weight(&self) -> f64 {
        self.root.map_or(0.0, |r| self.nodes[r].weight_sum)
    }

    /// Inserts a weighted point.
    ///
    /// # Panics
    /// Panics if the point has the wrong dimensionality.
    pub fn insert(&mut self, coords: &[f64], weight: f64) {
        assert_eq!(coords.len(), self.dim, "dimension mismatch on insert");
        self.len += 1;
        let entry = AggEntry {
            coords: coords.to_vec(),
            weight,
        };
        match self.root {
            None => {
                let mbr = Mbr::from_point(&Point::from(coords));
                self.nodes.push(AggNode {
                    mbr,
                    weight_sum: weight,
                    content: AggContent::Leaf(vec![entry]),
                });
                self.root = Some(self.nodes.len() - 1);
            }
            Some(root) => {
                if let Some(sibling) = self.insert_rec(root, entry) {
                    // The root split: create a new root with the two halves.
                    let mbr = self.nodes[root].mbr.union(&self.nodes[sibling].mbr);
                    let weight_sum = self.nodes[root].weight_sum + self.nodes[sibling].weight_sum;
                    self.nodes.push(AggNode {
                        mbr,
                        weight_sum,
                        content: AggContent::Internal(vec![root, sibling]),
                    });
                    self.root = Some(self.nodes.len() - 1);
                }
            }
        }
    }

    /// Recursive insertion; returns the id of a new sibling node when the
    /// visited node had to split.
    fn insert_rec(&mut self, node_id: usize, entry: AggEntry) -> Option<usize> {
        // Update this node's aggregate and MBR up front: the entry will end up
        // somewhere in this subtree regardless of splits below.
        self.nodes[node_id].weight_sum += entry.weight;
        self.nodes[node_id].mbr.extend_coords(&entry.coords);

        let child_action = match &self.nodes[node_id].content {
            AggContent::Leaf(_) => None,
            AggContent::Internal(children) => Some(self.choose_subtree(children, &entry.coords)),
        };

        match child_action {
            None => {
                // Leaf: push and split if necessary.
                if let AggContent::Leaf(entries) = &mut self.nodes[node_id].content {
                    entries.push(entry);
                    if entries.len() <= MAX_ENTRIES {
                        return None;
                    }
                }
                Some(self.split_leaf(node_id))
            }
            Some(child) => {
                if let Some(new_child) = self.insert_rec(child, entry) {
                    if let AggContent::Internal(children) = &mut self.nodes[node_id].content {
                        children.push(new_child);
                        if children.len() <= MAX_ENTRIES {
                            return None;
                        }
                    }
                    return Some(self.split_internal(node_id));
                }
                None
            }
        }
    }

    /// Chooses the child whose MBR needs the least enlargement to cover the
    /// point (ties broken by smaller volume).
    fn choose_subtree(&self, children: &[usize], coords: &[f64]) -> usize {
        let mut best = children[0];
        let mut best_enlargement = f64::INFINITY;
        let mut best_volume = f64::INFINITY;
        for &c in children {
            let mbr = &self.nodes[c].mbr;
            let mut extended = mbr.clone();
            extended.extend_coords(coords);
            let enlargement = extended.volume() - mbr.volume();
            let volume = mbr.volume();
            if enlargement < best_enlargement
                || (enlargement == best_enlargement && volume < best_volume)
            {
                best = c;
                best_enlargement = enlargement;
                best_volume = volume;
            }
        }
        best
    }

    /// Splits an over-full leaf along the dimension with the widest spread;
    /// the original node keeps the lower half, the new sibling gets the rest.
    fn split_leaf(&mut self, node_id: usize) -> usize {
        let dim = self.dim;
        let mut entries = match std::mem::replace(
            &mut self.nodes[node_id].content,
            AggContent::Leaf(Vec::new()),
        ) {
            AggContent::Leaf(e) => e,
            AggContent::Internal(_) => unreachable!("split_leaf called on internal node"),
        };
        let split_dim = widest_dimension(entries.iter().map(|e| e.coords.as_slice()), dim);
        entries.sort_unstable_by(|a, b| {
            a.coords[split_dim]
                .partial_cmp(&b.coords[split_dim])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let upper = entries.split_off(entries.len() / 2);
        let (low_mbr, low_sum) = leaf_summary(&entries);
        let (high_mbr, high_sum) = leaf_summary(&upper);

        self.nodes[node_id].content = AggContent::Leaf(entries);
        self.nodes[node_id].mbr = low_mbr;
        self.nodes[node_id].weight_sum = low_sum;

        self.nodes.push(AggNode {
            mbr: high_mbr,
            weight_sum: high_sum,
            content: AggContent::Leaf(upper),
        });
        self.nodes.len() - 1
    }

    /// Splits an over-full internal node by the centres of its children's
    /// MBRs along the widest dimension.
    fn split_internal(&mut self, node_id: usize) -> usize {
        let dim = self.dim;
        let mut children = match std::mem::replace(
            &mut self.nodes[node_id].content,
            AggContent::Internal(Vec::new()),
        ) {
            AggContent::Internal(c) => c,
            AggContent::Leaf(_) => unreachable!("split_internal called on leaf node"),
        };
        let centers: Vec<Vec<f64>> = children
            .iter()
            .map(|&c| self.nodes[c].mbr.center().into_coords())
            .collect();
        let split_dim = widest_dimension(centers.iter().map(|c| c.as_slice()), dim);
        children.sort_unstable_by(|&a, &b| {
            self.nodes[a].mbr.center()[split_dim]
                .partial_cmp(&self.nodes[b].mbr.center()[split_dim])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let upper = children.split_off(children.len() / 2);
        let (low_mbr, low_sum) = self.internal_summary(&children);
        let (high_mbr, high_sum) = self.internal_summary(&upper);

        self.nodes[node_id].content = AggContent::Internal(children);
        self.nodes[node_id].mbr = low_mbr;
        self.nodes[node_id].weight_sum = low_sum;

        self.nodes.push(AggNode {
            mbr: high_mbr,
            weight_sum: high_sum,
            content: AggContent::Internal(upper),
        });
        self.nodes.len() - 1
    }

    fn internal_summary(&self, children: &[usize]) -> (Mbr, f64) {
        let mbr = children
            .iter()
            .map(|&c| self.nodes[c].mbr.clone())
            .reduce(|a, b| a.union(&b))
            .expect("internal nodes have children");
        let sum = children.iter().map(|&c| self.nodes[c].weight_sum).sum();
        (mbr, sum)
    }

    /// Sum of the weights of all points `p ⪯ corner` (the window query of
    /// Algorithm 2).
    pub fn window_sum(&self, corner: &[f64]) -> f64 {
        self.sum_weights_in(&crate::region::WindowTo::new(corner))
    }

    /// Sum of weights of all points inside a downward-closed region.
    pub fn sum_weights_in<R: DominanceRegion>(&self, region: &R) -> f64 {
        match self.root {
            None => 0.0,
            Some(root) => self.sum_rec(root, region),
        }
    }

    fn sum_rec<R: DominanceRegion>(&self, node_id: usize, region: &R) -> f64 {
        let node = &self.nodes[node_id];
        if !region.may_intersect(&node.mbr) {
            return 0.0;
        }
        if region.covers(&node.mbr) {
            return node.weight_sum;
        }
        match &node.content {
            AggContent::Leaf(entries) => entries
                .iter()
                .filter(|e| region.contains(&e.coords))
                .map(|e| e.weight)
                .sum(),
            AggContent::Internal(children) => {
                children.iter().map(|&c| self.sum_rec(c, region)).sum()
            }
        }
    }

    /// Returns `true` if any stored point lies inside the region.
    pub fn any_in<R: DominanceRegion>(&self, region: &R) -> bool {
        match self.root {
            None => false,
            Some(root) => self.any_rec(root, region),
        }
    }

    fn any_rec<R: DominanceRegion>(&self, node_id: usize, region: &R) -> bool {
        let node = &self.nodes[node_id];
        if !region.may_intersect(&node.mbr) {
            return false;
        }
        if region.covers(&node.mbr) {
            return true;
        }
        match &node.content {
            AggContent::Leaf(entries) => entries.iter().any(|e| region.contains(&e.coords)),
            AggContent::Internal(children) => children.iter().any(|&c| self.any_rec(c, region)),
        }
    }
}

fn leaf_summary(entries: &[AggEntry]) -> (Mbr, f64) {
    let mbr = Mbr::from_coord_slices(entries.iter().map(|e| e.coords.as_slice()))
        .expect("leaf halves are non-empty");
    let sum = entries.iter().map(|e| e.weight).sum();
    (mbr, sum)
}

/// Index of the dimension with the largest coordinate spread.
fn widest_dimension<'a>(coords: impl Iterator<Item = &'a [f64]>, dim: usize) -> usize {
    let mut min = vec![f64::INFINITY; dim];
    let mut max = vec![f64::NEG_INFINITY; dim];
    for c in coords {
        for i in 0..dim {
            min[i] = min[i].min(c[i]);
            max[i] = max[i].max(c[i]);
        }
    }
    (0..dim)
        .max_by(|&a, &b| {
            (max[a] - min[a])
                .partial_cmp(&(max[b] - min[b]))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::{FDominatorsOf, WindowTo};
    use crate::test_util::random_entries;
    use arsp_geometry::constraints::WeightRatio;
    use arsp_geometry::fdom::WeightRatioFDominance;
    use proptest::prelude::*;

    #[test]
    fn empty_tree_sums_to_zero() {
        let tree = AggregateRTree::new(3);
        assert!(tree.is_empty());
        assert_eq!(tree.total_weight(), 0.0);
        assert_eq!(tree.window_sum(&[1.0, 1.0, 1.0]), 0.0);
        assert!(!tree.any_in(&WindowTo::new(&[1.0, 1.0, 1.0])));
    }

    #[test]
    fn window_sum_matches_brute_force_after_incremental_inserts() {
        let entries = random_entries(600, 3, 30, 42);
        let mut tree = AggregateRTree::new(3);
        for e in &entries {
            tree.insert(&e.coords, e.weight);
        }
        assert_eq!(tree.len(), entries.len());
        let total: f64 = entries.iter().map(|e| e.weight).sum();
        assert!((tree.total_weight() - total).abs() < 1e-9);

        for corner in [
            vec![0.5, 0.5, 0.5],
            vec![0.2, 0.8, 0.4],
            vec![1.0, 1.0, 1.0],
            vec![0.0, 0.0, 0.0],
        ] {
            let want: f64 = entries
                .iter()
                .filter(|e| e.coords.iter().zip(&corner).all(|(c, q)| c <= q))
                .map(|e| e.weight)
                .sum();
            let got = tree.window_sum(&corner);
            assert!(
                (got - want).abs() < 1e-9,
                "corner {corner:?}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn interleaved_inserts_and_queries() {
        // B&B interleaves insertions and window queries; check consistency at
        // every step on a small workload.
        let entries = random_entries(120, 2, 10, 9);
        let mut tree = AggregateRTree::new(2);
        let mut inserted: Vec<(Vec<f64>, f64)> = Vec::new();
        for e in &entries {
            let corner = e.coords.clone();
            let want: f64 = inserted
                .iter()
                .filter(|(c, _)| c.iter().zip(&corner).all(|(a, b)| a <= b))
                .map(|(_, w)| w)
                .sum();
            let got = tree.window_sum(&corner);
            assert!((got - want).abs() < 1e-9);
            tree.insert(&e.coords, e.weight);
            inserted.push((e.coords.clone(), e.weight));
        }
    }

    #[test]
    fn fdominance_region_sum() {
        let ratio = WeightRatio::uniform(2, 0.5, 2.0);
        let fdom = WeightRatioFDominance::new(ratio);
        let entries = random_entries(300, 2, 10, 17);
        let mut tree = AggregateRTree::new(2);
        for e in &entries {
            tree.insert(&e.coords, e.weight);
        }
        let target = [0.6, 0.6];
        let region = FDominatorsOf::new(&fdom, &target);
        use arsp_geometry::fdom::FDominance as _;
        let want: f64 = entries
            .iter()
            .filter(|e| fdom.f_dominates(&e.coords, &target))
            .map(|e| e.weight)
            .sum();
        let got = tree.sum_weights_in(&region);
        assert!((got - want).abs() < 1e-9);
        assert_eq!(tree.any_in(&region), want > 0.0);
    }

    #[test]
    fn reset_empties_and_retargets_the_tree() {
        let mut tree = AggregateRTree::new(2);
        for e in random_entries(80, 2, 5, 3) {
            tree.insert(&e.coords, e.weight);
        }
        assert!(!tree.is_empty());
        tree.reset(3);
        assert!(tree.is_empty());
        assert_eq!(tree.total_weight(), 0.0);
        tree.insert(&[0.1, 0.2, 0.3], 0.5);
        assert_eq!(tree.len(), 1);
        assert!((tree.window_sum(&[1.0, 1.0, 1.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn duplicate_points_accumulate_weight() {
        let mut tree = AggregateRTree::new(2);
        for _ in 0..50 {
            tree.insert(&[0.5, 0.5], 0.1);
        }
        assert_eq!(tree.len(), 50);
        assert!((tree.window_sum(&[0.5, 0.5]) - 5.0).abs() < 1e-9);
        assert!((tree.window_sum(&[0.4, 0.6]) - 0.0).abs() < 1e-12);
    }

    proptest! {
        /// Incremental window sums always match a brute-force filter.
        #[test]
        fn window_sum_is_exact(
            pts in proptest::collection::vec(
                (proptest::collection::vec(0.0f64..1.0, 3), 0.0f64..1.0), 1..120),
            corner in proptest::collection::vec(0.0f64..1.0, 3),
        ) {
            let mut tree = AggregateRTree::new(3);
            for (coords, w) in &pts {
                tree.insert(coords, *w);
            }
            let want: f64 = pts
                .iter()
                .filter(|(c, _)| c.iter().zip(&corner).all(|(a, b)| a <= b))
                .map(|(_, w)| w)
                .sum();
            let got = tree.window_sum(&corner);
            prop_assert!((got - want).abs() < 1e-9);
        }
    }
}
