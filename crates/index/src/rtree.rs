//! A static R-tree bulk loaded with the Sort-Tile-Recursive (STR) algorithm.
//!
//! The paper organises the instance set `I` with an in-memory R-tree
//! (§II-B) and Algorithm 2 (B&B) traverses that R-tree in best-first order,
//! pushing child nodes into its own priority queue. The tree therefore
//! exposes its node structure (`NodeId`, [`NodeContent`]) rather than hiding
//! it behind query methods, while also offering the usual region queries for
//! the other consumers (tests, LOOP-style scans, eclipse baselines).
//!
//! Layout: entries live in a columnar [`FlatEntries`] store and every node's
//! children — child node ids for internal nodes, entry positions for leaves —
//! are a `(start, len)` range into one shared item array ([`RTree::items`]).
//! The STR partitioning sorts a single permutation in place and records leaf
//! *boundaries* instead of materialising a `Vec<Vec<usize>>` of groups, so
//! bulk loading allocates O(1) vectors beyond the output arenas.

use crate::region::DominanceRegion;
use crate::{EntryRef, FlatEntries, PointEntry};
use arsp_geometry::Mbr;

/// Identifier of a node inside an [`RTree`] arena.
pub type NodeId = usize;

/// Children of an R-tree node, as a `(start, len)` range into the shared
/// item array ([`RTree::items`]).
#[derive(Clone, Copy, Debug)]
pub enum NodeContent {
    /// Internal node: the range holds child node ids.
    Internal {
        /// First slot of the node's range in the shared item array.
        start: u32,
        /// Number of children.
        len: u32,
    },
    /// Leaf node: the range holds entry positions.
    Leaf {
        /// First slot of the node's range in the shared item array.
        start: u32,
        /// Number of entries in the leaf.
        len: u32,
    },
}

/// One node of the R-tree.
#[derive(Clone, Debug)]
pub struct Node {
    mbr: Mbr,
    content: NodeContent,
}

impl Node {
    /// Minimum bounding rectangle of the node.
    pub fn mbr(&self) -> &Mbr {
        &self.mbr
    }

    /// Children of the node.
    pub fn content(&self) -> &NodeContent {
        &self.content
    }

    /// `true` when the node is a leaf.
    pub fn is_leaf(&self) -> bool {
        matches!(self.content, NodeContent::Leaf { .. })
    }
}

/// A static STR bulk-loaded R-tree.
#[derive(Clone, Debug)]
pub struct RTree {
    entries: FlatEntries,
    nodes: Vec<Node>,
    /// Shared child arena: leaf ranges hold entry positions, internal ranges
    /// hold child node ids.
    items: Vec<u32>,
    root: Option<NodeId>,
    fanout: usize,
}

/// Default node fanout. Small enough that best-first traversal gets useful
/// pruning granularity, large enough to keep the tree shallow.
pub const DEFAULT_FANOUT: usize = 16;

impl RTree {
    /// Bulk loads an R-tree over the given entries with the default fanout.
    pub fn bulk_load(entries: Vec<PointEntry>) -> Self {
        Self::bulk_load_with_fanout(entries, DEFAULT_FANOUT)
    }

    /// Bulk loads an R-tree with an explicit fanout (≥ 2).
    pub fn bulk_load_with_fanout(entries: Vec<PointEntry>, fanout: usize) -> Self {
        Self::bulk_load_flat_with_fanout(FlatEntries::from_entries(&entries), fanout)
    }

    /// Bulk loads directly over a columnar entry store with the default
    /// fanout (no row-oriented intermediate).
    pub fn bulk_load_flat(entries: FlatEntries) -> Self {
        Self::bulk_load_flat_with_fanout(entries, DEFAULT_FANOUT)
    }

    /// [`RTree::bulk_load_flat`] with an explicit fanout (≥ 2).
    pub fn bulk_load_flat_with_fanout(entries: FlatEntries, fanout: usize) -> Self {
        assert!(fanout >= 2, "R-tree fanout must be at least 2");
        let n = entries.len();
        let mut tree = Self {
            entries,
            nodes: Vec::new(),
            items: Vec::new(),
            root: None,
            fanout,
        };
        if n == 0 {
            return tree;
        }
        // 1. Partition one permutation of entry positions into spatially
        //    coherent leaf ranges: `order` is sorted in place and
        //    `boundaries` collects the end offset of each leaf group.
        let mut order: Vec<u32> = (0..n as u32).collect();
        let dim = tree.entries.dim();
        let mut boundaries: Vec<u32> = Vec::new();
        str_partition(
            tree.entries.coords(),
            dim,
            &mut order,
            0,
            fanout,
            0,
            &mut boundaries,
        );

        // 2. Create the leaf level. The permutation becomes the front of the
        //    shared item array; each leaf is a range of it.
        tree.items.extend_from_slice(&order);
        let mut level: Vec<NodeId> = Vec::with_capacity(boundaries.len());
        let mut start = 0u32;
        for &end in &boundaries {
            let group = &order[start as usize..end as usize];
            let mbr = Mbr::from_flat_rows(
                tree.entries.coords(),
                dim,
                group.iter().map(|&i| i as usize),
            )
            .expect("leaf groups are non-empty");
            level.push(tree.push_node(Node {
                mbr,
                content: NodeContent::Leaf {
                    start,
                    len: end - start,
                },
            }));
            start = end;
        }

        // 3. Build upper levels by grouping consecutive nodes (the STR order
        //    keeps consecutive nodes spatially close).
        while level.len() > 1 {
            let mut next_level = Vec::with_capacity(level.len().div_ceil(fanout));
            for chunk in level.chunks(fanout) {
                let mbr = chunk
                    .iter()
                    .map(|&id| tree.nodes[id].mbr.clone())
                    .reduce(|a, b| a.union(&b))
                    .expect("chunks are non-empty");
                let start = tree.items.len() as u32;
                tree.items.extend(chunk.iter().map(|&id| id as u32));
                next_level.push(tree.push_node(Node {
                    mbr,
                    content: NodeContent::Internal {
                        start,
                        len: chunk.len() as u32,
                    },
                }));
            }
            level = next_level;
        }
        tree.root = Some(level[0]);
        tree
    }

    fn push_node(&mut self, node: Node) -> NodeId {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// The root node id, or `None` for an empty tree.
    pub fn root(&self) -> Option<NodeId> {
        self.root
    }

    /// Access a node by id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// The item slots of a node's `(start, len)` range: child node ids for an
    /// internal node, entry positions for a leaf.
    #[inline]
    pub fn items(&self, start: u32, len: u32) -> &[u32] {
        &self.items[start as usize..(start + len) as usize]
    }

    /// The columnar entry store, in the order entries were supplied.
    pub fn entries(&self) -> &FlatEntries {
        &self.entries
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Configured fanout.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Height of the tree (0 for an empty tree, 1 for a single leaf).
    pub fn height(&self) -> usize {
        let mut h = 0;
        let mut cur = self.root;
        while let Some(id) = cur {
            h += 1;
            cur = match self.nodes[id].content {
                NodeContent::Internal { start, .. } => Some(self.items[start as usize] as usize),
                NodeContent::Leaf { .. } => None,
            };
        }
        h
    }

    /// Calls `f` for every entry inside the downward-closed region.
    pub fn for_each_in<R: DominanceRegion>(&self, region: &R, mut f: impl FnMut(EntryRef<'_>)) {
        let Some(root) = self.root else { return };
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id];
            if !region.may_intersect(&node.mbr) {
                continue;
            }
            match node.content {
                NodeContent::Internal { start, len } => {
                    stack.extend(self.items(start, len).iter().map(|&c| c as usize))
                }
                NodeContent::Leaf { start, len } => {
                    for &ei in self.items(start, len) {
                        let entry = self.entries.get(ei as usize);
                        if region.contains(entry.coords) {
                            f(entry);
                        }
                    }
                }
            }
        }
    }

    /// Sum of entry weights inside the region.
    pub fn sum_weights_in<R: DominanceRegion>(&self, region: &R) -> f64 {
        let mut total = 0.0;
        self.for_each_in(region, |e| total += e.weight);
        total
    }

    /// Returns `true` when some entry other than `skip_id` lies inside the
    /// region. Uses covers/may_intersect pruning so it can stop early.
    pub fn any_in<R: DominanceRegion>(&self, region: &R, skip_id: Option<usize>) -> bool {
        let Some(root) = self.root else { return false };
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            let node = &self.nodes[id];
            if !region.may_intersect(&node.mbr) {
                continue;
            }
            match node.content {
                NodeContent::Internal { start, len } => {
                    stack.extend(self.items(start, len).iter().map(|&c| c as usize))
                }
                NodeContent::Leaf { start, len } => {
                    for &ei in self.items(start, len) {
                        if Some(self.entries.id(ei as usize)) == skip_id {
                            continue;
                        }
                        if region.contains(self.entries.coords_of(ei as usize)) {
                            return true;
                        }
                    }
                }
            }
        }
        false
    }
}

/// Recursive STR partitioning over a flat coordinate array: sorts
/// `order[..]` by dimension `dim` and splits it into vertical slabs whose
/// size is a multiple of the target leaf size, recursing on the remaining
/// dimensions. Instead of materialising per-leaf vectors, the function
/// records the *end offset* (relative to the full permutation, hence `base`)
/// of every leaf group in `boundaries` — the permutation itself carries the
/// membership.
#[allow(clippy::too_many_arguments)]
fn str_partition(
    coords: &[f64],
    total_dims: usize,
    order: &mut [u32],
    dim: usize,
    leaf_size: usize,
    base: u32,
    boundaries: &mut Vec<u32>,
) {
    if order.len() <= leaf_size {
        boundaries.push(base + order.len() as u32);
        return;
    }
    order.sort_unstable_by(|&a, &b| {
        coords[a as usize * total_dims + dim]
            .partial_cmp(&coords[b as usize * total_dims + dim])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    if dim + 1 == total_dims {
        let mut start = 0;
        while start < order.len() {
            let end = (start + leaf_size).min(order.len());
            boundaries.push(base + end as u32);
            start = end;
        }
        return;
    }
    // Number of leaves still needed below this level and the slab width that
    // spreads them evenly over the remaining dimensions.
    let leaves = order.len().div_ceil(leaf_size);
    let remaining_dims = (total_dims - dim) as f64;
    let slices = (leaves as f64).powf(1.0 / remaining_dims).ceil() as usize;
    let slab = (order.len().div_ceil(slices)).max(leaf_size);
    let mut start = 0;
    while start < order.len() {
        let end = (start + slab).min(order.len());
        str_partition(
            coords,
            total_dims,
            &mut order[start..end],
            dim + 1,
            leaf_size,
            base + start as u32,
            boundaries,
        );
        start = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::WindowTo;
    use crate::test_util::random_entries;

    fn brute_window_sum(entries: &[PointEntry], corner: &[f64]) -> f64 {
        entries
            .iter()
            .filter(|e| e.coords.iter().zip(corner).all(|(c, q)| c <= q))
            .map(|e| e.weight)
            .sum()
    }

    #[test]
    fn empty_tree() {
        let tree = RTree::bulk_load(Vec::new());
        assert!(tree.is_empty());
        assert_eq!(tree.root(), None);
        assert_eq!(tree.height(), 0);
        let corner = [1.0, 1.0];
        assert_eq!(tree.sum_weights_in(&WindowTo::new(&corner)), 0.0);
        assert!(!tree.any_in(&WindowTo::new(&corner), None));
    }

    #[test]
    fn single_entry_tree() {
        let tree = RTree::bulk_load(vec![PointEntry::new(0, 0, 0.5, vec![0.2, 0.3])]);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.height(), 1);
        let corner = [0.25, 0.35];
        assert_eq!(tree.sum_weights_in(&WindowTo::new(&corner)), 0.5);
        let corner2 = [0.1, 0.35];
        assert_eq!(tree.sum_weights_in(&WindowTo::new(&corner2)), 0.0);
    }

    #[test]
    fn node_mbrs_contain_children() {
        let entries = random_entries(500, 3, 20, 7);
        let tree = RTree::bulk_load(entries.clone());
        // Every entry must be inside the MBR of the leaf holding it, and every
        // child MBR must be inside its parent's MBR.
        let root = tree.root().unwrap();
        let mut stack = vec![root];
        let mut seen = 0usize;
        while let Some(id) = stack.pop() {
            let node = tree.node(id);
            match *node.content() {
                NodeContent::Internal { start, len } => {
                    for &c in tree.items(start, len) {
                        assert!(node.mbr().contains_mbr(tree.node(c as usize).mbr()));
                        stack.push(c as usize);
                    }
                }
                NodeContent::Leaf { start, len } => {
                    for &ei in tree.items(start, len) {
                        assert!(node.mbr().contains(tree.entries().coords_of(ei as usize)));
                        seen += 1;
                    }
                }
            }
        }
        assert_eq!(seen, entries.len());
    }

    #[test]
    fn leaf_sizes_respect_fanout() {
        let entries = random_entries(300, 2, 10, 11);
        let tree = RTree::bulk_load_with_fanout(entries, 8);
        let root = tree.root().unwrap();
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            match *tree.node(id).content() {
                NodeContent::Internal { start, len } => {
                    assert!(len <= 8);
                    stack.extend(tree.items(start, len).iter().map(|&c| c as usize));
                }
                NodeContent::Leaf { len, .. } => {
                    assert!(len >= 1);
                    assert!(len <= 8);
                }
            }
        }
    }

    #[test]
    fn window_sum_matches_brute_force() {
        let entries = random_entries(800, 3, 25, 3);
        let tree = RTree::bulk_load(entries.clone());
        for corner in [
            vec![0.5, 0.5, 0.5],
            vec![0.9, 0.2, 0.7],
            vec![0.05, 0.05, 0.05],
            vec![1.0, 1.0, 1.0],
        ] {
            let got = tree.sum_weights_in(&WindowTo::new(&corner));
            let want = brute_window_sum(&entries, &corner);
            assert!(
                (got - want).abs() < 1e-9,
                "corner {corner:?}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn for_each_visits_exactly_the_region() {
        let entries = random_entries(400, 2, 10, 21);
        let tree = RTree::bulk_load(entries.clone());
        let corner = vec![0.6, 0.4];
        let mut ids = Vec::new();
        tree.for_each_in(&WindowTo::new(&corner), |e| ids.push(e.id));
        ids.sort_unstable();
        let mut expected: Vec<usize> = entries
            .iter()
            .filter(|e| e.coords[0] <= 0.6 && e.coords[1] <= 0.4)
            .map(|e| e.id)
            .collect();
        expected.sort_unstable();
        assert_eq!(ids, expected);
    }

    #[test]
    fn any_in_respects_skip_id() {
        let entries = vec![
            PointEntry::new(0, 0, 1.0, vec![0.1, 0.1]),
            PointEntry::new(1, 1, 1.0, vec![0.9, 0.9]),
        ];
        let tree = RTree::bulk_load(entries);
        let corner = [0.2, 0.2];
        assert!(tree.any_in(&WindowTo::new(&corner), None));
        assert!(!tree.any_in(&WindowTo::new(&corner), Some(0)));
    }

    #[test]
    fn larger_tree_has_multiple_levels() {
        let entries = random_entries(2000, 4, 50, 5);
        let tree = RTree::bulk_load(entries);
        assert!(tree.height() >= 3, "height = {}", tree.height());
        assert_eq!(tree.fanout(), DEFAULT_FANOUT);
    }

    #[test]
    fn leaf_ranges_partition_the_permutation() {
        // The flattened STR load must cover every entry exactly once with
        // consecutive, non-overlapping leaf ranges at the front of the item
        // arena.
        let entries = random_entries(731, 3, 15, 13);
        let tree = RTree::bulk_load(entries);
        let mut leaf_ranges: Vec<(u32, u32)> = Vec::new();
        let mut stack = vec![tree.root().unwrap()];
        while let Some(id) = stack.pop() {
            match *tree.node(id).content() {
                NodeContent::Internal { start, len } => {
                    stack.extend(tree.items(start, len).iter().map(|&c| c as usize));
                }
                NodeContent::Leaf { start, len } => leaf_ranges.push((start, len)),
            }
        }
        leaf_ranges.sort_unstable();
        let mut expect_start = 0u32;
        let mut seen: Vec<u32> = Vec::new();
        for (start, len) in leaf_ranges {
            assert_eq!(start, expect_start, "leaf ranges must be consecutive");
            seen.extend_from_slice(tree.items(start, len));
            expect_start = start + len;
        }
        assert_eq!(expect_start as usize, tree.len());
        seen.sort_unstable();
        let expected: Vec<u32> = (0..tree.len() as u32).collect();
        assert_eq!(seen, expected);
    }
}
