//! Delta-aware index handles for dynamic datasets.
//!
//! The static indexes of this crate are bulk-loaded arenas: fast to query,
//! frozen at construction. A dynamic dataset (see `arsp_data::VersionedStore`)
//! splits the rows into an **indexed bulk** and an **unindexed delta range**
//! and needs two pieces of machinery on top:
//!
//! * [`DeltaPolicy`] — the logarithmic-method trigger: how large the pending
//!   delta (appends + tombstones) may grow, absolutely and relative to the
//!   live row count, before it is folded back into the arena indexes.
//! * [`DeltaForest`] — the per-object [`AggregateRTree`] forest of the DUAL
//!   algorithm, maintained incrementally. An [`AggregateRTree`] is built by
//!   *sequential insertion*, so appending an object's new instances to its
//!   existing tree reproduces — node for node, bit for bit — the tree a cold
//!   build over the grown instance list would produce. That makes append-only
//!   objects free to keep in sync (`fold`), while objects that lost or
//!   revised instances are marked dirty and rebuilt from scratch on next use
//!   (`begin_rebuild`) — the selective-invalidation half of the design.
//!
//! The forest tracks, per object slot, how many instances of the object's
//! canonical (logical-order) list have been folded; the owner replays
//! `list[folded..]` to catch a slot up. Neither type knows about versions or
//! uncertain-data semantics — the dynamic engine in `arsp-core` drives them.

use crate::aggregate_rtree::AggregateRTree;

/// When to fold the delta into the arena indexes (the logarithmic-method
/// threshold). A merge triggers once the pending row count reaches the
/// absolute floor **and** the fraction of the live rows.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeltaPolicy {
    /// Minimum pending rows before a merge is considered at all (small
    /// deltas are cheaper to scan than to fold).
    pub min_pending: usize,
    /// Pending rows as a fraction of the live rows at which a merge fires.
    pub max_fraction: f64,
}

impl Default for DeltaPolicy {
    /// Merge once the delta reaches 128 pending rows *and* 8 % of the live
    /// rows — the delta-scan overhead stays single-digit percent while
    /// merges stay `O(log)`-amortised per row.
    fn default() -> Self {
        Self {
            min_pending: 128,
            max_fraction: 0.08,
        }
    }
}

impl DeltaPolicy {
    /// A policy that never merges (callers compact manually).
    pub fn manual() -> Self {
        Self {
            min_pending: usize::MAX,
            max_fraction: f64::INFINITY,
        }
    }

    /// A policy that merges after every mutation (useful in tests: the delta
    /// paths then never see more than one pending row).
    pub fn eager() -> Self {
        Self {
            min_pending: 0,
            max_fraction: 0.0,
        }
    }

    /// `true` when `pending` rows over `live` live rows warrant a merge.
    pub fn should_merge(&self, live: usize, pending: usize) -> bool {
        pending >= self.min_pending && pending as f64 >= self.max_fraction * live.max(1) as f64
    }
}

/// One object slot of a [`DeltaForest`].
#[derive(Clone, Debug)]
struct DeltaSlot {
    tree: AggregateRTree,
    /// How many entries of the object's canonical list have been inserted
    /// into `tree` (a prefix — the owner replays the tail to catch up).
    folded: usize,
    /// Set when the folded prefix no longer matches the canonical list
    /// (a deletion or overwrite inside it); the slot must be rebuilt.
    dirty: bool,
}

/// A per-object forest of aggregated R-trees maintained against a mutating
/// dataset: append-only objects are folded forward exactly, mutated objects
/// are selectively rebuilt. See the [module docs](self).
#[derive(Debug)]
pub struct DeltaForest {
    dim: usize,
    slots: Vec<DeltaSlot>,
}

impl DeltaForest {
    /// An empty forest over `dim`-dimensional points.
    pub fn new(dim: usize) -> Self {
        assert!(dim >= 1);
        Self {
            dim,
            slots: Vec::new(),
        }
    }

    /// Point dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of object slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when the forest has no slots yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Grows the forest to at least `n` slots (new slots start empty).
    pub fn ensure_slots(&mut self, n: usize) {
        while self.slots.len() < n {
            self.slots.push(DeltaSlot {
                tree: AggregateRTree::new(self.dim),
                folded: 0,
                dirty: false,
            });
        }
    }

    /// The tree of one slot (query side).
    #[inline]
    pub fn tree(&self, slot: usize) -> &AggregateRTree {
        &self.slots[slot].tree
    }

    /// How many canonical entries of the slot have been folded.
    #[inline]
    pub fn folded(&self, slot: usize) -> usize {
        self.slots[slot].folded
    }

    /// `true` when the slot's folded prefix was invalidated and the slot
    /// must be rebuilt before its tree is queried again.
    #[inline]
    pub fn is_dirty(&self, slot: usize) -> bool {
        self.slots[slot].dirty
    }

    /// Marks a slot's folded prefix as invalidated (an entry inside it was
    /// removed or revised).
    pub fn mark_dirty(&mut self, slot: usize) {
        self.slots[slot].dirty = true;
    }

    /// Folds the next canonical entry of a slot into its tree — exactly the
    /// insertion a cold build would perform at this position.
    pub fn fold(&mut self, slot: usize, coords: &[f64], weight: f64) {
        let s = &mut self.slots[slot];
        debug_assert!(!s.dirty, "fold on a dirty slot; rebuild it first");
        s.tree.insert(coords, weight);
        s.folded += 1;
    }

    /// Empties a slot so it can be re-folded from the start of its canonical
    /// list (the rebuild half of selective invalidation; also used when an
    /// object retires). The node arena's allocation is kept.
    pub fn begin_rebuild(&mut self, slot: usize) {
        let s = &mut self.slots[slot];
        s.tree.reset(self.dim);
        s.folded = 0;
        s.dirty = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::random_entries;

    #[test]
    fn policy_thresholds() {
        let p = DeltaPolicy::default();
        assert!(!p.should_merge(10_000, 100), "below the absolute floor");
        assert!(!p.should_merge(10_000, 300), "below the fraction");
        assert!(p.should_merge(10_000, 900));
        assert!(p.should_merge(0, 128), "empty stores merge at the floor");
        assert!(!DeltaPolicy::manual().should_merge(10, 1_000_000));
        assert!(DeltaPolicy::eager().should_merge(1_000_000, 1));
    }

    /// The forest's core guarantee: folding appends forward produces a tree
    /// bitwise interchangeable with a cold sequential build — every window
    /// sum agrees exactly.
    #[test]
    fn folded_appends_match_a_cold_sequential_build() {
        let entries = random_entries(300, 3, 1, 7);
        let mut forest = DeltaForest::new(3);
        forest.ensure_slots(1);

        // Fold in three batches, as the dynamic engine would between queries.
        let mut cold = AggregateRTree::new(3);
        for chunk in entries.chunks(100) {
            for e in chunk {
                forest.fold(0, &e.coords, e.weight);
            }
            for e in chunk {
                cold.insert(&e.coords, e.weight);
            }
            for corner in [[0.5, 0.5, 0.5], [0.9, 0.2, 0.7], [1.0, 1.0, 1.0]] {
                let a = forest.tree(0).window_sum(&corner);
                let b = cold.window_sum(&corner);
                assert_eq!(a.to_bits(), b.to_bits(), "corner {corner:?}");
            }
        }
        assert_eq!(forest.folded(0), entries.len());
    }

    #[test]
    fn dirty_slots_rebuild_from_scratch() {
        let entries = random_entries(80, 2, 1, 3);
        let mut forest = DeltaForest::new(2);
        forest.ensure_slots(2);
        for e in &entries {
            forest.fold(0, &e.coords, e.weight);
        }
        assert!(!forest.is_dirty(0));
        forest.mark_dirty(0);
        assert!(forest.is_dirty(0));

        // Rebuild with the first entry dropped: the result matches a cold
        // build over the surviving list.
        forest.begin_rebuild(0);
        assert_eq!(forest.folded(0), 0);
        let mut cold = AggregateRTree::new(2);
        for e in &entries[1..] {
            forest.fold(0, &e.coords, e.weight);
            cold.insert(&e.coords, e.weight);
        }
        let corner = [0.8, 0.8];
        assert_eq!(
            forest.tree(0).window_sum(&corner).to_bits(),
            cold.window_sum(&corner).to_bits()
        );
        // Slot 1 was never touched.
        assert!(forest.tree(1).is_empty());
        assert_eq!(forest.len(), 2);
        assert!(!forest.is_empty());
    }
}
