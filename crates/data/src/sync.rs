//! The synchronization façade for this crate's concurrent structures —
//! the `arsp-data` twin of `arsp_core::sync`.
//!
//! [`crate::versioned`]'s `EpochPinRegistry` and `SnapshotCache` import
//! their primitives from here instead of `std::sync` directly (`cargo
//! xtask lint` enforces it). Normal builds re-export `std::sync`; under
//! `--cfg arsp_model_check` (set by `cargo xtask model-check`) the names
//! resolve to the vendored `interleave` model checker's deterministic
//! twins, so the serving layer's pin/publish/retire protocol can be proven
//! over all interleavings in `tests/model_check.rs`.

#[cfg(not(arsp_model_check))]
pub use std::sync::atomic;
#[cfg(not(arsp_model_check))]
pub use std::sync::{Arc, Condvar, Mutex, MutexGuard};

#[cfg(arsp_model_check)]
pub use interleave::sync::atomic;
#[cfg(arsp_model_check)]
pub use interleave::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Locks a mutex, riding through poisoning — see `arsp_core::sync::lock`
/// for the rationale. The only sanctioned way to lock in
/// [`crate::versioned`].
pub fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}
