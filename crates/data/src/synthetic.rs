//! Synthetic uncertain-dataset generator (§V-A of the paper).
//!
//! For `m` uncertain objects the generator:
//!
//! 1. draws object centres `c_i ∈ [0,1]^d` following an independent (IND),
//!    anti-correlated (ANTI) or correlated (CORR) distribution,
//! 2. builds a hyper-rectangle `R_i` centred at `c_i` whose edge length
//!    follows a normal distribution on `[0, l]` with mean `l/2` and standard
//!    deviation `l/8`,
//! 3. draws the instance count `n_i` uniformly from `[1, cnt]` and places the
//!    instances uniformly inside `R_i`, each with probability `1/n_i`,
//! 4. finally makes the first `ϕ·m` objects *partial* (`Σp < 1`) by removing
//!    one instance (the paper's procedure); objects that only have a single
//!    instance instead have that instance's probability halved so that the
//!    object still exists but is partial.
//!
//! The default parameter values are the paper's defaults
//! (`m = 16K, cnt = 400, d = 4, l = 0.2, ϕ = 0`); benchmarks scale `m` and
//! `cnt` down as described in EXPERIMENTS.md.

use crate::dataset::UncertainDataset;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Distribution of the object centres.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Distribution {
    /// Independent: uniform in `[0,1]^d`.
    Independent,
    /// Correlated: centres concentrate around the main diagonal.
    Correlated,
    /// Anti-correlated: centres concentrate around the hyperplane
    /// `Σ_i x_i = d/2`.
    AntiCorrelated,
}

impl Distribution {
    /// Short uppercase name used in benchmark output (IND / CORR / ANTI).
    pub fn short_name(&self) -> &'static str {
        match self {
            Distribution::Independent => "IND",
            Distribution::Correlated => "CORR",
            Distribution::AntiCorrelated => "ANTI",
        }
    }
}

/// Parameters of the synthetic generator.
#[derive(Clone, Debug)]
pub struct SyntheticConfig {
    /// Number of uncertain objects `m`.
    pub num_objects: usize,
    /// Maximum instance count per object (`cnt`); the actual count is uniform
    /// in `[1, cnt]`.
    pub max_instances: usize,
    /// Dimensionality `d`.
    pub dim: usize,
    /// Maximum edge length `l` of the per-object hyper-rectangles.
    pub region_length: f64,
    /// Fraction `ϕ ∈ [0, 1]` of objects with total probability below one.
    pub phi: f64,
    /// Centre distribution.
    pub distribution: Distribution,
    /// RNG seed; the generator is fully deterministic given the seed.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        Self {
            num_objects: 16_000,
            max_instances: 400,
            dim: 4,
            region_length: 0.2,
            phi: 0.0,
            distribution: Distribution::Independent,
            seed: 42,
        }
    }
}

impl SyntheticConfig {
    /// A small configuration convenient for tests: `m` objects, at most `cnt`
    /// instances each, dimension `d`, paper defaults otherwise.
    pub fn small(num_objects: usize, max_instances: usize, dim: usize, seed: u64) -> Self {
        Self {
            num_objects,
            max_instances,
            dim,
            seed,
            ..Self::default()
        }
    }

    /// Generates the dataset.
    pub fn generate(&self) -> UncertainDataset {
        assert!(self.num_objects >= 1);
        assert!(self.max_instances >= 1);
        assert!(self.dim >= 1);
        assert!((0.0..=1.0).contains(&self.phi));
        assert!(self.region_length >= 0.0);

        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut dataset = UncertainDataset::new(self.dim);
        let partial_objects = (self.phi * self.num_objects as f64).round() as usize;

        for obj_idx in 0..self.num_objects {
            let center = self.sample_center(&mut rng);
            // Edge length ~ N(l/2, l/8) clamped to [0, l].
            let edge = sample_normal(&mut rng, self.region_length / 2.0, self.region_length / 8.0)
                .clamp(0.0, self.region_length);
            let count = rng.gen_range(1..=self.max_instances);
            let prob = 1.0 / count as f64;
            let mut instances: Vec<(Vec<f64>, f64)> = (0..count)
                .map(|_| {
                    let coords = center
                        .iter()
                        .map(|&c| {
                            let lo = (c - edge / 2.0).max(0.0);
                            let hi = (c + edge / 2.0).min(1.0);
                            if hi > lo {
                                rng.gen_range(lo..hi)
                            } else {
                                lo
                            }
                        })
                        .collect();
                    (coords, prob)
                })
                .collect();

            if obj_idx < partial_objects {
                if instances.len() > 1 {
                    instances.pop();
                } else {
                    // Single-instance objects cannot lose their only instance;
                    // halve the probability instead so the object is partial.
                    instances[0].1 /= 2.0;
                }
            }
            dataset.push_object(instances);
        }
        dataset
    }

    fn sample_center(&self, rng: &mut impl Rng) -> Vec<f64> {
        match self.distribution {
            Distribution::Independent => (0..self.dim).map(|_| rng.gen_range(0.0..1.0)).collect(),
            Distribution::Correlated => {
                // A common base value plus small independent jitter keeps the
                // centres near the main diagonal.
                let base: f64 = rng.gen_range(0.0..1.0);
                (0..self.dim)
                    .map(|_| (base + sample_normal(rng, 0.0, 0.08)).clamp(0.0, 1.0))
                    .collect()
            }
            Distribution::AntiCorrelated => {
                // Draw a uniform point, then project it towards the hyperplane
                // Σ x_i = d/2 with a little jitter: good values in one
                // dimension come with bad values in the others.
                let raw: Vec<f64> = (0..self.dim).map(|_| rng.gen_range(0.0..1.0)).collect();
                let shift = (self.dim as f64 / 2.0 - raw.iter().sum::<f64>()) / self.dim as f64;
                raw.iter()
                    .map(|&x| (x + shift + sample_normal(rng, 0.0, 0.03)).clamp(0.0, 1.0))
                    .collect()
            }
        }
    }
}

/// Box–Muller normal sample (the `rand` crate alone does not ship a normal
/// distribution and pulling in `rand_distr` for one function is not worth an
/// extra dependency).
pub(crate) fn sample_normal(rng: &mut impl Rng, mean: f64, std_dev: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    mean + std_dev * z
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let cfg = SyntheticConfig::small(20, 5, 3, 7);
        let a = cfg.generate();
        let b = cfg.generate();
        assert_eq!(a.num_instances(), b.num_instances());
        for (x, y) in a.instances().iter().zip(b.instances()) {
            assert_eq!(x.coords, y.coords);
            assert_eq!(x.prob, y.prob);
        }
    }

    #[test]
    fn respects_basic_shape_parameters() {
        let cfg = SyntheticConfig {
            num_objects: 50,
            max_instances: 8,
            dim: 5,
            region_length: 0.1,
            phi: 0.0,
            distribution: Distribution::Independent,
            seed: 1,
        };
        let d = cfg.generate();
        assert_eq!(d.num_objects(), 50);
        assert_eq!(d.dim(), 5);
        assert!(d.validate().is_ok());
        for obj in d.objects() {
            assert!(obj.num_instances() >= 1 && obj.num_instances() <= 8);
            assert!((obj.total_prob - 1.0).abs() < 1e-9);
            // All instances of an object lie in a box of edge ≤ l (plus the
            // [0,1] clamp, which can only shrink it).
            let coords: Vec<&[f64]> = d
                .object_instances(obj.id)
                .map(|i| i.coords.as_slice())
                .collect();
            for dim in 0..5 {
                let lo = coords.iter().map(|c| c[dim]).fold(f64::INFINITY, f64::min);
                let hi = coords
                    .iter()
                    .map(|c| c[dim])
                    .fold(f64::NEG_INFINITY, f64::max);
                assert!(hi - lo <= 0.1 + 1e-9);
                assert!(lo >= 0.0 && hi <= 1.0);
            }
        }
    }

    #[test]
    fn phi_controls_partial_objects() {
        let cfg = SyntheticConfig {
            num_objects: 40,
            max_instances: 6,
            phi: 0.25,
            dim: 2,
            ..SyntheticConfig::default()
        };
        let d = cfg.generate();
        assert_eq!(d.num_partial_objects(), 10);
        assert!(d.validate().is_ok());
    }

    #[test]
    fn expected_instance_count_tracks_cnt() {
        // Expected instances per object ≈ cnt/2; with 200 objects and
        // cnt = 20 the total should be around 2000 ± a wide margin.
        let cfg = SyntheticConfig::small(200, 20, 2, 3);
        let d = cfg.generate();
        let avg = d.num_instances() as f64 / d.num_objects() as f64;
        assert!(avg > 7.0 && avg < 14.0, "avg = {avg}");
    }

    #[test]
    fn correlated_centres_hug_the_diagonal() {
        let gen = |dist| {
            SyntheticConfig {
                num_objects: 400,
                max_instances: 1,
                dim: 2,
                region_length: 0.0,
                phi: 0.0,
                distribution: dist,
                seed: 5,
            }
            .generate()
        };
        let spread = |d: &UncertainDataset| {
            d.instances()
                .iter()
                .map(|i| (i.coords[0] - i.coords[1]).abs())
                .sum::<f64>()
                / d.num_instances() as f64
        };
        let corr = spread(&gen(Distribution::Correlated));
        let ind = spread(&gen(Distribution::Independent));
        let anti = spread(&gen(Distribution::AntiCorrelated));
        assert!(corr < ind, "corr {corr} vs ind {ind}");
        assert!(anti > corr, "anti {anti} vs corr {corr}");
    }

    #[test]
    fn normal_sampler_moments() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let samples: Vec<f64> = (0..20_000)
            .map(|_| sample_normal(&mut rng, 2.0, 0.5))
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 2.0).abs() < 0.02, "mean = {mean}");
        assert!((var.sqrt() - 0.5).abs() < 0.02, "std = {}", var.sqrt());
    }
}
