//! The flat columnar instance store.
//!
//! Every hot loop of the ARSP algorithms streams instance coordinates and
//! per-instance scalars. [`crate::UncertainDataset`] stores one heap-allocated
//! `Vec<f64>` per [`crate::Instance`], so those loops chase a pointer per
//! instance and the allocator decides the memory layout. [`FlatStore`] is the
//! cache-friendly twin: one contiguous, dim-strided coordinate array plus
//! parallel columns for the existence probabilities and owning objects. It is
//! built once per dataset (the engine caches it) and is purely a *layout*
//! change — every value is copied bit-for-bit from the dataset, so algorithms
//! running over the flat store produce results bitwise identical to the
//! `Instance`-based paths.

use crate::dataset::UncertainDataset;
use arsp_geometry::PointRef;
use std::ops::Range;

/// A column-oriented snapshot of an [`UncertainDataset`]: coordinates in one
/// dim-strided array, probabilities and object ids in parallel columns, and
/// the per-object instance ranges. Instance `id`'s coordinates are
/// `coords()[id*dim .. (id+1)*dim]` — ids are the dataset's dense instance
/// ids, so flat results index exactly like `Instance`-based results.
#[derive(Clone, Debug)]
pub struct FlatStore {
    dim: usize,
    coords: Vec<f64>,
    probs: Vec<f64>,
    objects: Vec<u32>,
    /// `object_start[j]..object_start[j+1]` is the instance-id range of
    /// object `j` (instances of one object are contiguous by construction of
    /// [`UncertainDataset::push_object`]).
    object_start: Vec<u32>,
}

impl FlatStore {
    /// Builds the columnar layout from a dataset. `O(n·d)` copies, no other
    /// work.
    pub fn from_dataset(dataset: &UncertainDataset) -> Self {
        let dim = dataset.dim();
        let n = dataset.num_instances();
        let m = dataset.num_objects();
        let mut coords = Vec::with_capacity(n * dim);
        let mut probs = Vec::with_capacity(n);
        let mut objects = Vec::with_capacity(n);
        for inst in dataset.instances() {
            coords.extend_from_slice(&inst.coords);
            probs.push(inst.prob);
            objects.push(inst.object as u32);
        }
        let mut object_start = Vec::with_capacity(m + 1);
        object_start.push(0u32);
        for obj in dataset.objects() {
            let start = *object_start.last().expect("seeded with 0") as usize;
            // Instance ids of one object are the contiguous range the pushes
            // assigned; the zip below asserts that invariant holds.
            for (k, &id) in obj.instance_ids.iter().enumerate() {
                debug_assert_eq!(id, start + k, "object instances must be contiguous");
            }
            object_start.push((start + obj.instance_ids.len()) as u32);
        }
        debug_assert_eq!(*object_start.last().unwrap() as usize, n);
        Self {
            dim,
            coords,
            probs,
            objects,
            object_start,
        }
    }

    /// Assembles a flat store directly from its columns — the constructor
    /// [`crate::VersionedStore::snapshot_flat`] uses to materialise a
    /// canonical snapshot without an intermediate [`UncertainDataset`]. The
    /// caller guarantees the canonical layout: instances of one object
    /// contiguous, `object_start` the cumulative instance counts.
    ///
    /// # Panics
    /// Debug-asserts the structural invariants; release builds trust the
    /// caller (the versioned store is the only producer).
    pub fn from_parts(
        dim: usize,
        coords: Vec<f64>,
        probs: Vec<f64>,
        objects: Vec<u32>,
        object_start: Vec<u32>,
    ) -> Self {
        debug_assert_eq!(coords.len(), probs.len() * dim);
        debug_assert_eq!(objects.len(), probs.len());
        debug_assert_eq!(object_start.first().copied(), Some(0));
        debug_assert_eq!(
            object_start.last().copied().unwrap_or(0) as usize,
            probs.len()
        );
        debug_assert!(objects
            .iter()
            .enumerate()
            .all(|(id, &obj)| (object_start[obj as usize] as usize
                ..object_start[obj as usize + 1] as usize)
                .contains(&id)));
        Self {
            dim,
            coords,
            probs,
            objects,
            object_start,
        }
    }

    /// Dataset dimensionality `d`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of instances `n`.
    #[inline]
    pub fn num_instances(&self) -> usize {
        self.probs.len()
    }

    /// Number of uncertain objects `m`.
    #[inline]
    pub fn num_objects(&self) -> usize {
        self.object_start.len() - 1
    }

    /// The whole dim-strided coordinate column.
    #[inline]
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// Coordinates of one instance.
    #[inline]
    pub fn coords_of(&self, id: usize) -> &[f64] {
        &self.coords[id * self.dim..(id + 1) * self.dim]
    }

    /// Borrowed point view of one instance.
    #[inline]
    pub fn point_ref(&self, id: usize) -> PointRef<'_> {
        PointRef(self.coords_of(id))
    }

    /// Existence probability column (indexed by instance id).
    #[inline]
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Existence probability of one instance.
    #[inline]
    pub fn prob(&self, id: usize) -> f64 {
        self.probs[id]
    }

    /// Owning-object column (indexed by instance id).
    #[inline]
    pub fn objects(&self) -> &[u32] {
        &self.objects
    }

    /// Owning object of one instance.
    #[inline]
    pub fn object_of(&self, id: usize) -> usize {
        self.objects[id] as usize
    }

    /// The contiguous instance-id range of one object.
    #[inline]
    pub fn object_instances(&self, object: usize) -> Range<usize> {
        self.object_start[object] as usize..self.object_start[object + 1] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_running_example;

    #[test]
    fn flat_store_mirrors_the_dataset_bit_for_bit() {
        let d = paper_running_example();
        let flat = FlatStore::from_dataset(&d);
        assert_eq!(flat.dim(), d.dim());
        assert_eq!(flat.num_instances(), d.num_instances());
        assert_eq!(flat.num_objects(), d.num_objects());
        assert_eq!(flat.coords().len(), d.num_instances() * d.dim());
        for inst in d.instances() {
            assert_eq!(flat.coords_of(inst.id), inst.coords.as_slice());
            assert_eq!(flat.point_ref(inst.id).coords(), inst.coords.as_slice());
            assert_eq!(flat.prob(inst.id).to_bits(), inst.prob.to_bits());
            assert_eq!(flat.object_of(inst.id), inst.object);
        }
    }

    #[test]
    fn object_ranges_cover_exactly_the_objects_instances() {
        let d = paper_running_example();
        let flat = FlatStore::from_dataset(&d);
        let mut covered = 0;
        for obj in d.objects() {
            let range = flat.object_instances(obj.id);
            assert_eq!(range.len(), obj.num_instances());
            for id in range {
                assert_eq!(flat.object_of(id), obj.id);
                assert!(obj.instance_ids.contains(&id));
                covered += 1;
            }
        }
        assert_eq!(covered, d.num_instances());
    }

    #[test]
    fn empty_dataset_flattens_to_empty_columns() {
        let d = UncertainDataset::new(3);
        let flat = FlatStore::from_dataset(&d);
        assert_eq!(flat.num_instances(), 0);
        assert_eq!(flat.num_objects(), 0);
        assert!(flat.coords().is_empty());
    }
}
