//! Deterministic fail-point registry for crash and fault-injection tests.
//!
//! The persistence layer ([`crate::persist`]) names each point where a real
//! process could die or an I/O call could fail — *fail-point sites* — and
//! calls [`hit`] there. In normal operation a hit is a cheap no-op; a test
//! (or the `ARSP_FAILPOINTS` environment variable) can *arm* a site with a
//! [`FailAction`] to inject a panic, an I/O error, or a delay at exactly
//! that point, deterministically. The crash-recovery suite iterates
//! [`SITES`], kills the write path at every one of them, and proves
//! recovery lands on an applied-batch prefix (`cargo xtask lint` enforces
//! that every registered site appears in that test matrix).
//!
//! Sites sit on I/O paths only, so the bookkeeping cost of a hit (one
//! uncontended mutex lock) is noise next to the syscalls around it. Hits
//! are counted whether or not the site is armed, so tests can assert a
//! path was actually exercised.
//!
//! The registry is process-global: tests that arm sites serialise
//! themselves (see `tests/crash_recovery.rs`) and call [`reset`] before
//! and after.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// Every registered fail-point site. Arming an unknown site panics, and the
/// lint's failpoint-coverage rule checks this list against both the
/// [`hit`] call sites in [`crate::persist`] and the crash-recovery test
/// matrix — a site added here without a matching test fails `cargo xtask
/// lint`.
pub const SITES: &[&str] = &[
    "wal.append.header",
    "wal.append.payload",
    "wal.append.sync",
    "snapshot.write",
    "snapshot.sync",
    "snapshot.rename",
    "wal.reset",
];

/// What an armed fail-point does when hit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailAction {
    /// Panic with a message naming the site — the in-process stand-in for a
    /// process kill (the write path unwinds mid-operation, exactly like
    /// `kill -9` freezes the file state mid-operation).
    Panic,
    /// Return an `std::io::Error` from [`hit`], modelling a failing syscall
    /// (full disk, EIO) that the caller must surface as a typed error.
    Error,
    /// Sleep for the given duration, modelling a stall (slow disk, network
    /// file system) for deadline tests.
    Delay(Duration),
}

#[derive(Default)]
struct SiteState {
    /// Armed action, if any; one-shot (disarmed when it fires).
    action: Option<FailAction>,
    /// Hits to let pass before the action fires (`arm_after`).
    skip: u64,
    /// Total hits ever, armed or not.
    hits: u64,
}

fn registry() -> &'static Mutex<HashMap<&'static str, SiteState>> {
    static REGISTRY: OnceLock<Mutex<HashMap<&'static str, SiteState>>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut map = HashMap::new();
        if let Ok(spec) = std::env::var("ARSP_FAILPOINTS") {
            arm_from_spec(&mut map, &spec);
        }
        Mutex::new(map)
    })
}

/// Parses an `ARSP_FAILPOINTS` spec: `;`-separated `site=action` pairs,
/// where `action` is `panic`, `error`, `delay:<ms>`, optionally suffixed
/// `@<skip>` to let the first `<skip>` hits pass (`wal.append.sync=panic`,
/// `snapshot.rename=error@2`). Malformed entries panic — a typo silently
/// injecting nothing would make a crash test vacuous.
fn arm_from_spec(map: &mut HashMap<&'static str, SiteState>, spec: &str) {
    for entry in spec.split(';').filter(|e| !e.trim().is_empty()) {
        let (site, action) = entry
            .split_once('=')
            .unwrap_or_else(|| panic!("ARSP_FAILPOINTS entry `{entry}` is not site=action"));
        let (action, skip) = match action.split_once('@') {
            Some((a, s)) => (
                a,
                s.parse::<u64>()
                    .unwrap_or_else(|_| panic!("bad skip count in `{entry}`")),
            ),
            None => (action, 0),
        };
        let action = match action.split_once(':') {
            None if action == "panic" => FailAction::Panic,
            None if action == "error" => FailAction::Error,
            Some(("delay", ms)) => FailAction::Delay(Duration::from_millis(
                ms.parse::<u64>()
                    .unwrap_or_else(|_| panic!("bad delay in `{entry}`")),
            )),
            _ => panic!("unknown fail action in `{entry}`"),
        };
        let state = map.entry(site_name(site.trim())).or_default();
        state.action = Some(action);
        state.skip = skip;
    }
}

/// The canonical `&'static str` for a site, panicking on unknown names so
/// typos fail fast instead of arming nothing.
fn site_name(site: &str) -> &'static str {
    SITES
        .iter()
        .copied()
        .find(|&s| s == site)
        .unwrap_or_else(|| panic!("unknown fail-point site `{site}` (see failpoint::SITES)"))
}

/// Arms `site` to fire `action` on its next hit. One-shot: the action
/// disarms when it fires.
pub fn arm(site: &str, action: FailAction) {
    arm_after(site, action, 0);
}

/// Arms `site` to let `skip` hits pass, then fire `action` once. Lets a
/// crash test target e.g. the third WAL append specifically.
pub fn arm_after(site: &str, action: FailAction, skip: u64) {
    let site = site_name(site);
    let mut map = lock_registry();
    let state = map.entry(site).or_default();
    state.action = Some(action);
    state.skip = skip;
}

/// Disarms `site` (hit counting continues).
pub fn disarm(site: &str) {
    let site = site_name(site);
    if let Some(state) = lock_registry().get_mut(site) {
        state.action = None;
        state.skip = 0;
    }
}

/// Disarms every site and zeroes every hit counter — test isolation.
/// Note this also clears arms installed from `ARSP_FAILPOINTS`.
pub fn reset() {
    lock_registry().clear();
}

/// Total hits `site` has ever received (armed or not) since the last
/// [`reset`] — how tests assert a code path was actually exercised.
pub fn hit_count(site: &str) -> u64 {
    let site = site_name(site);
    lock_registry().get(site).map_or(0, |s| s.hits)
}

/// The fail-point itself: called by the persistence layer at each named
/// site. Unarmed, it counts the hit and returns `Ok(())`. Armed, it fires
/// the action once: [`FailAction::Panic`] unwinds, [`FailAction::Error`]
/// returns an `std::io::Error` naming the site, [`FailAction::Delay`]
/// sleeps then succeeds.
pub fn hit(site: &str) -> std::io::Result<()> {
    let site = site_name(site);
    let fired = {
        let mut map = lock_registry();
        let state = map.entry(site).or_default();
        state.hits += 1;
        match state.action {
            None => None,
            Some(_) if state.skip > 0 => {
                state.skip -= 1;
                None
            }
            Some(action) => {
                state.action = None; // one-shot
                Some(action)
            }
        }
    };
    match fired {
        None => Ok(()),
        Some(FailAction::Panic) => panic!("fail-point `{site}` fired (injected crash)"),
        Some(FailAction::Error) => Err(std::io::Error::other(format!(
            "fail-point `{site}` fired (injected I/O error)"
        ))),
        Some(FailAction::Delay(d)) => {
            std::thread::sleep(d);
            Ok(())
        }
    }
}

fn lock_registry() -> std::sync::MutexGuard<'static, HashMap<&'static str, SiteState>> {
    registry()
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Serialises tests that arm fail-points: the registry is process-global,
/// so two tests arming sites concurrently would inject into each other.
/// Hold the returned guard for the duration of the test (the guard rides
/// through poisoning — a panicking fault test must not wedge the others).
pub fn exclusive() -> std::sync::MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global; these tests serialise on the
    /// public gate (shared with `persist`'s fault tests).
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        exclusive()
    }

    #[test]
    fn unarmed_hits_count_and_pass() {
        let _gate = serial();
        reset();
        assert_eq!(hit_count("wal.reset"), 0);
        hit("wal.reset").expect("unarmed hit passes");
        hit("wal.reset").expect("unarmed hit passes");
        assert_eq!(hit_count("wal.reset"), 2);
        reset();
    }

    #[test]
    fn armed_error_fires_once_after_the_skip() {
        let _gate = serial();
        reset();
        arm_after("wal.append.sync", FailAction::Error, 2);
        hit("wal.append.sync").expect("skipped");
        hit("wal.append.sync").expect("skipped");
        let err = hit("wal.append.sync").expect_err("third hit fires");
        assert!(err.to_string().contains("wal.append.sync"));
        hit("wal.append.sync").expect("one-shot: disarmed after firing");
        assert_eq!(hit_count("wal.append.sync"), 4);
        reset();
    }

    #[test]
    fn armed_panic_unwinds_and_disarms() {
        let _gate = serial();
        reset();
        arm("snapshot.rename", FailAction::Panic);
        let caught = std::panic::catch_unwind(|| hit("snapshot.rename"));
        assert!(caught.is_err());
        hit("snapshot.rename").expect("disarmed after the injected crash");
        reset();
    }

    #[test]
    fn disarm_cancels_a_pending_action() {
        let _gate = serial();
        reset();
        arm("snapshot.write", FailAction::Error);
        disarm("snapshot.write");
        hit("snapshot.write").expect("disarmed");
        reset();
    }

    #[test]
    #[should_panic]
    fn unknown_sites_fail_fast() {
        arm("no.such.site", FailAction::Panic);
    }

    #[test]
    fn env_spec_parsing_arms_sites() {
        let _gate = serial();
        let mut map = HashMap::new();
        arm_from_spec(&mut map, "wal.reset=panic;snapshot.write=delay:7@2; ");
        assert_eq!(map["wal.reset"].action, Some(FailAction::Panic));
        assert_eq!(map["wal.reset"].skip, 0);
        assert_eq!(
            map["snapshot.write"].action,
            Some(FailAction::Delay(Duration::from_millis(7)))
        );
        assert_eq!(map["snapshot.write"].skip, 2);
    }
}
