//! Deterministic fail-point registry for crash and fault-injection tests.
//!
//! The persistence layer ([`crate::persist`]) names each point where a real
//! process could die or an I/O call could fail — *fail-point sites* — and
//! calls [`hit`] there. In normal operation a hit is a cheap no-op; a test
//! (or the `ARSP_FAILPOINTS` environment variable) can *arm* a site with a
//! [`FailAction`] to inject a panic, an I/O error, or a delay at exactly
//! that point, deterministically. The crash-recovery suite iterates
//! [`SITES`], kills the write path at every one of them, and proves
//! recovery lands on an applied-batch prefix (`cargo xtask lint` enforces
//! that every registered site appears in that test matrix).
//!
//! Sites sit on I/O paths only, so the bookkeeping cost of a hit (one
//! uncontended mutex lock) is noise next to the syscalls around it. Hits
//! are counted whether or not the site is armed, so tests can assert a
//! path was actually exercised.
//!
//! The registry is process-global: tests that arm sites serialise
//! themselves (see `tests/crash_recovery.rs`) and call [`reset`] before
//! and after.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// Every registered fail-point site. Arming an unknown site panics, and the
/// lint's failpoint-coverage rule checks this list against both the
/// [`hit`] call sites in [`crate::persist`] and the crash-recovery test
/// matrix — a site added here without a matching test fails `cargo xtask
/// lint`.
pub const SITES: &[&str] = &[
    "wal.append.header",
    "wal.append.payload",
    "wal.append.sync",
    "snapshot.write",
    "snapshot.sync",
    "snapshot.rename",
    "snapshot.dirsync",
    "wal.reset",
    "shard.apply",
    "shard.publish",
    "shard.probe",
    "shard.recover",
];

/// Denominator of the [`FailAction::Chance`] probability: a chance action
/// stores `p` in millionths, keeping the action type `Copy + Eq`.
pub const CHANCE_DENOMINATOR: u32 = 1_000_000;

/// What an armed fail-point does when hit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailAction {
    /// Panic with a message naming the site — the in-process stand-in for a
    /// process kill (the write path unwinds mid-operation, exactly like
    /// `kill -9` freezes the file state mid-operation).
    Panic,
    /// Return an `std::io::Error` from [`hit`], modelling a failing syscall
    /// (full disk, EIO) that the caller must surface as a typed error.
    Error,
    /// Sleep for the given duration, modelling a stall (slow disk, network
    /// file system) for deadline tests.
    Delay(Duration),
    /// Panic with the given probability (in millionths, see
    /// [`CHANCE_DENOMINATOR`]) on **every** hit, drawn from the registry's
    /// seeded RNG — *not* one-shot, so a soak test can randomize crash
    /// timing while staying deterministic per seed ([`seed_rng`]).
    Chance(u32),
}

impl FailAction {
    /// A [`FailAction::Chance`] firing with probability `p ∈ [0, 1]`
    /// (rounded to millionths).
    pub fn chance(p: f64) -> FailAction {
        let millionths = (p.clamp(0.0, 1.0) * f64::from(CHANCE_DENOMINATOR)).round() as u32;
        FailAction::Chance(millionths.min(CHANCE_DENOMINATOR))
    }
}

#[derive(Default)]
struct SiteState {
    /// Armed action, if any; one-shot (disarmed when it fires).
    action: Option<FailAction>,
    /// Hits to let pass before the action fires (`arm_after`).
    skip: u64,
    /// Total hits ever, armed or not.
    hits: u64,
}

fn registry() -> &'static Mutex<HashMap<&'static str, SiteState>> {
    static REGISTRY: OnceLock<Mutex<HashMap<&'static str, SiteState>>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut map = HashMap::new();
        if let Ok(spec) = std::env::var("ARSP_FAILPOINTS") {
            arm_from_spec(&mut map, &spec);
        }
        Mutex::new(map)
    })
}

/// The seed the chance RNG starts from (and returns to on [`reset`]):
/// `ARSP_FAILPOINT_SEED` when set, a fixed constant otherwise.
fn initial_seed() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    *SEED.get_or_init(|| match std::env::var("ARSP_FAILPOINT_SEED") {
        Ok(raw) => raw
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("ARSP_FAILPOINT_SEED `{raw}` is not a u64")),
        Err(_) => 0x9e37_79b9_7f4a_7c15,
    })
}

fn rng_state() -> &'static Mutex<u64> {
    static RNG: OnceLock<Mutex<u64>> = OnceLock::new();
    RNG.get_or_init(|| Mutex::new(initial_seed()))
}

/// Re-seeds the probabilistic-trigger RNG: [`FailAction::Chance`] draws
/// after this call are a pure function of `(seed, hit order)`, so a soak
/// test that fixes its seed crashes at the same hits on every run.
pub fn seed_rng(seed: u64) {
    // xorshift64* needs a non-zero state.
    *lock_rng() = seed.max(1);
}

/// One xorshift64* draw mapped onto `[0, CHANCE_DENOMINATOR)`.
fn draw_millionths() -> u32 {
    let mut state = lock_rng();
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    ((x.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 33) % u64::from(CHANCE_DENOMINATOR)) as u32
}

fn lock_rng() -> std::sync::MutexGuard<'static, u64> {
    rng_state()
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Parses an `ARSP_FAILPOINTS` spec: `;`-separated `site=action` pairs,
/// where `action` is `panic`, `error`, `delay:<ms>`, or a bare probability
/// like `0.05` (a [`FailAction::Chance`] firing on each hit with that
/// probability from the seeded RNG), optionally suffixed `@<skip>` to let
/// the first `<skip>` hits pass (`wal.append.sync=panic`,
/// `snapshot.rename=error@2`, `shard.apply=0.05`). Malformed entries
/// panic — a typo silently injecting nothing would make a crash test
/// vacuous.
fn arm_from_spec(map: &mut HashMap<&'static str, SiteState>, spec: &str) {
    for entry in spec.split(';').filter(|e| !e.trim().is_empty()) {
        let (site, action) = entry
            .split_once('=')
            .unwrap_or_else(|| panic!("ARSP_FAILPOINTS entry `{entry}` is not site=action"));
        let (action, skip) = match action.split_once('@') {
            Some((a, s)) => (
                a,
                s.parse::<u64>()
                    .unwrap_or_else(|_| panic!("bad skip count in `{entry}`")),
            ),
            None => (action, 0),
        };
        let action = match action.split_once(':') {
            None if action == "panic" => FailAction::Panic,
            None if action == "error" => FailAction::Error,
            None if action
                .parse::<f64>()
                .is_ok_and(|p| (0.0..=1.0).contains(&p)) =>
            {
                FailAction::chance(action.parse::<f64>().expect("checked above"))
            }
            Some(("delay", ms)) => FailAction::Delay(Duration::from_millis(
                ms.parse::<u64>()
                    .unwrap_or_else(|_| panic!("bad delay in `{entry}`")),
            )),
            _ => panic!("unknown fail action in `{entry}`"),
        };
        let state = map.entry(site_name(site.trim())).or_default();
        state.action = Some(action);
        state.skip = skip;
    }
}

/// The canonical `&'static str` for a site, panicking on unknown names so
/// typos fail fast instead of arming nothing.
fn site_name(site: &str) -> &'static str {
    SITES
        .iter()
        .copied()
        .find(|&s| s == site)
        .unwrap_or_else(|| panic!("unknown fail-point site `{site}` (see failpoint::SITES)"))
}

/// Arms `site` to fire `action` on its next hit. One-shot: the action
/// disarms when it fires.
pub fn arm(site: &str, action: FailAction) {
    arm_after(site, action, 0);
}

/// Arms `site` to let `skip` hits pass, then fire `action` once. Lets a
/// crash test target e.g. the third WAL append specifically.
pub fn arm_after(site: &str, action: FailAction, skip: u64) {
    let site = site_name(site);
    let mut map = lock_registry();
    let state = map.entry(site).or_default();
    state.action = Some(action);
    state.skip = skip;
}

/// Disarms `site` (hit counting continues).
pub fn disarm(site: &str) {
    let site = site_name(site);
    if let Some(state) = lock_registry().get_mut(site) {
        state.action = None;
        state.skip = 0;
    }
}

/// Disarms every site, zeroes every hit counter, and restores the chance
/// RNG to its initial seed — test isolation. Note this also clears arms
/// installed from `ARSP_FAILPOINTS`.
pub fn reset() {
    lock_registry().clear();
    *lock_rng() = initial_seed().max(1);
}

/// Total hits `site` has ever received (armed or not) since the last
/// [`reset`] — how tests assert a code path was actually exercised.
pub fn hit_count(site: &str) -> u64 {
    let site = site_name(site);
    lock_registry().get(site).map_or(0, |s| s.hits)
}

/// The fail-point itself: called by the persistence layer at each named
/// site. Unarmed, it counts the hit and returns `Ok(())`. Armed, it fires
/// the action once: [`FailAction::Panic`] unwinds, [`FailAction::Error`]
/// returns an `std::io::Error` naming the site, [`FailAction::Delay`]
/// sleeps then succeeds. [`FailAction::Chance`] is the exception to the
/// one-shot rule: it stays armed and panics on each hit with its
/// configured probability, drawn from the seeded RNG.
pub fn hit(site: &str) -> std::io::Result<()> {
    let site = site_name(site);
    let fired = {
        let mut map = lock_registry();
        let state = map.entry(site).or_default();
        state.hits += 1;
        match state.action {
            None => None,
            Some(_) if state.skip > 0 => {
                state.skip -= 1;
                None
            }
            Some(action @ FailAction::Chance(_)) => Some(action), // stays armed
            Some(action) => {
                state.action = None; // one-shot
                Some(action)
            }
        }
    };
    match fired {
        None => Ok(()),
        Some(FailAction::Panic) => panic!("fail-point `{site}` fired (injected crash)"),
        Some(FailAction::Error) => Err(std::io::Error::other(format!(
            "fail-point `{site}` fired (injected I/O error)"
        ))),
        Some(FailAction::Delay(d)) => {
            std::thread::sleep(d);
            Ok(())
        }
        Some(FailAction::Chance(millionths)) => {
            if draw_millionths() < millionths {
                panic!("fail-point `{site}` fired (injected crash, probabilistic)");
            }
            Ok(())
        }
    }
}

fn lock_registry() -> std::sync::MutexGuard<'static, HashMap<&'static str, SiteState>> {
    registry()
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Serialises tests that arm fail-points: the registry is process-global,
/// so two tests arming sites concurrently would inject into each other.
/// Hold the returned guard for the duration of the test (the guard rides
/// through poisoning — a panicking fault test must not wedge the others).
pub fn exclusive() -> std::sync::MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global; these tests serialise on the
    /// public gate (shared with `persist`'s fault tests).
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        exclusive()
    }

    #[test]
    fn unarmed_hits_count_and_pass() {
        let _gate = serial();
        reset();
        assert_eq!(hit_count("wal.reset"), 0);
        hit("wal.reset").expect("unarmed hit passes");
        hit("wal.reset").expect("unarmed hit passes");
        assert_eq!(hit_count("wal.reset"), 2);
        reset();
    }

    #[test]
    fn armed_error_fires_once_after_the_skip() {
        let _gate = serial();
        reset();
        arm_after("wal.append.sync", FailAction::Error, 2);
        hit("wal.append.sync").expect("skipped");
        hit("wal.append.sync").expect("skipped");
        let err = hit("wal.append.sync").expect_err("third hit fires");
        assert!(err.to_string().contains("wal.append.sync"));
        hit("wal.append.sync").expect("one-shot: disarmed after firing");
        assert_eq!(hit_count("wal.append.sync"), 4);
        reset();
    }

    #[test]
    fn armed_panic_unwinds_and_disarms() {
        let _gate = serial();
        reset();
        arm("snapshot.rename", FailAction::Panic);
        let caught = std::panic::catch_unwind(|| hit("snapshot.rename"));
        assert!(caught.is_err());
        hit("snapshot.rename").expect("disarmed after the injected crash");
        reset();
    }

    #[test]
    fn disarm_cancels_a_pending_action() {
        let _gate = serial();
        reset();
        arm("snapshot.write", FailAction::Error);
        disarm("snapshot.write");
        hit("snapshot.write").expect("disarmed");
        reset();
    }

    #[test]
    #[should_panic]
    fn unknown_sites_fail_fast() {
        arm("no.such.site", FailAction::Panic);
    }

    #[test]
    fn env_spec_parsing_arms_sites() {
        let _gate = serial();
        let mut map = HashMap::new();
        arm_from_spec(&mut map, "wal.reset=panic;snapshot.write=delay:7@2; ");
        assert_eq!(map["wal.reset"].action, Some(FailAction::Panic));
        assert_eq!(map["wal.reset"].skip, 0);
        assert_eq!(
            map["snapshot.write"].action,
            Some(FailAction::Delay(Duration::from_millis(7)))
        );
        assert_eq!(map["snapshot.write"].skip, 2);
    }

    #[test]
    fn env_spec_parsing_accepts_probabilities() {
        let _gate = serial();
        let mut map = HashMap::new();
        arm_from_spec(&mut map, "shard.apply=0.25;shard.probe=1.0@3");
        assert_eq!(map["shard.apply"].action, Some(FailAction::Chance(250_000)));
        assert_eq!(
            map["shard.probe"].action,
            Some(FailAction::Chance(CHANCE_DENOMINATOR))
        );
        assert_eq!(map["shard.probe"].skip, 3);
    }

    #[test]
    #[should_panic]
    fn env_spec_rejects_out_of_range_probabilities() {
        let mut map = HashMap::new();
        arm_from_spec(&mut map, "shard.apply=1.5");
    }

    #[test]
    fn chance_one_always_fires_and_stays_armed() {
        let _gate = serial();
        reset();
        arm("shard.apply", FailAction::chance(1.0));
        for _ in 0..3 {
            let caught = std::panic::catch_unwind(|| hit("shard.apply"));
            assert!(caught.is_err(), "p=1.0 fires on every hit, never disarms");
        }
        reset();
    }

    #[test]
    fn chance_zero_never_fires() {
        let _gate = serial();
        reset();
        arm("shard.apply", FailAction::chance(0.0));
        for _ in 0..64 {
            hit("shard.apply").expect("p=0.0 never fires");
        }
        reset();
    }

    #[test]
    fn chance_is_deterministic_per_seed() {
        let _gate = serial();
        reset();
        let pattern = |seed: u64| -> Vec<bool> {
            seed_rng(seed);
            arm("shard.publish", FailAction::chance(0.5));
            let fired = (0..64)
                .map(|_| std::panic::catch_unwind(|| hit("shard.publish")).is_err())
                .collect();
            disarm("shard.publish");
            fired
        };
        let first = pattern(42);
        let second = pattern(42);
        let other = pattern(43);
        assert_eq!(first, second, "same seed, same firing pattern");
        assert!(first.iter().any(|&f| f), "p=0.5 fires within 64 hits");
        assert!(!first.iter().all(|&f| f), "p=0.5 passes within 64 hits");
        assert_ne!(first, other, "different seed, different pattern");
        reset();
    }
}
