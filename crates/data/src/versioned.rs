//! The mutable, versioned twin of the columnar instance store.
//!
//! Every structure built in the earlier layers — [`FlatStore`], the index
//! arenas, the engine caches — assumes a dataset frozen at construction time.
//! Real ARSP workloads are streams: instances arrive, probabilities get
//! revised, objects retire. [`VersionedStore`] is the substrate for that
//! workload:
//!
//! * **Delta appends** — every new row (insert or overwrite) is appended to
//!   the tail of the columnar arrays; rows already written are never moved or
//!   modified, so caches built over a prefix of the store stay valid.
//! * **Tombstones** — deletions flip a bit in the `alive` bitmap; the row's
//!   data stays in place (readers that recorded the row keep working, they
//!   just skip it).
//! * **Versions** — every mutation bumps a monotonically increasing
//!   [`VersionedStore::version`]. Caches record the version they were built
//!   at and patch themselves forward.
//! * **Merges** — [`VersionedStore::merge`] folds the delta tail and the
//!   tombstones back into a canonical base (the logarithmic-method step);
//!   physical row ids are re-assigned (the *epoch* bumps) but the logical
//!   content — and every [`InstanceHandle`] — is unchanged.
//!
//! ## Canonical order and snapshot semantics
//!
//! At any version the store describes exactly one [`UncertainDataset`]: the
//! objects that currently have at least one live instance, in creation order,
//! each carrying its live instances in *logical* order (insertion order;
//! removals preserve the order of the rest). An **overwrite moves the
//! instance to its object's logical tail** — mirroring the physical
//! delta-append — which is part of the documented semantics and what the
//! agreement tests' mirror model reproduces. [`VersionedStore::snapshot_dataset`]
//! and [`VersionedStore::snapshot_flat`] materialise that dataset; instance
//! ids of the snapshot ("snapshot ids") are dense in canonical order, so
//! results computed over a snapshot index exactly like results from a cold
//! engine built on the same dataset.
//!
//! Handles, not row ids, are the stable external names of instances: a row id
//! is only valid within one epoch (merges renumber rows), while an
//! [`InstanceHandle`] survives merges *and* overwrites (an overwrite
//! re-points the handle at the replacement row).

use std::collections::{HashMap, VecDeque};

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::{lock, Arc, Mutex, MutexGuard};

use crate::dataset::UncertainDataset;
use crate::flat::FlatStore;

/// Sentinel row id meaning "no row" (dead handle, unmapped slot).
const NO_ROW: u32 = u32::MAX;

/// Bounded capacity of the in-memory change log (entries, one per
/// mutation). When a consumer lags further behind than this,
/// [`VersionedStore::changes_since`] reports the gap by returning `None`
/// and the consumer falls back to a full rebuild of whatever it maintains.
const CHANGE_LOG_CAPACITY: usize = 4096;

/// The pre-image of one tombstoned (removed or overwritten) row, preserved
/// by the change log so consumers can test what the dead row used to
/// dominate without keeping the whole old snapshot around.
#[derive(Clone, Debug, PartialEq)]
pub struct RemovedRow {
    /// Store object id the row belonged to (object ids never shift).
    pub object: usize,
    /// Coordinates of the dead row, bit-for-bit.
    pub coords: Vec<f64>,
    /// Existence probability of the dead row.
    pub prob: f64,
}

/// Everything that changed between two store versions, merged from the
/// change log by [`VersionedStore::changes_since`]: the handles whose rows
/// were inserted, overwritten or removed, plus the pre-images of every row
/// that died. Versions bump by exactly one per mutation, so the summary
/// covers `(from_version, to_version]` with no gaps when it is returned at
/// all.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ChangeSummary {
    /// The version the consumer last observed (exclusive).
    pub from_version: u64,
    /// The store version the summary runs up to (inclusive).
    pub to_version: u64,
    /// Handles touched by any mutation in the window, deduplicated in
    /// first-touch order. A touched handle may be live (insert/overwrite)
    /// or dead (remove, retire) at `to_version`.
    pub touched: Vec<InstanceHandle>,
    /// Pre-images of every row tombstoned in the window (removals,
    /// overwrites, retirements), in mutation order.
    pub removed: Vec<RemovedRow>,
}

/// One change-log entry: the footprint of a single mutation, recorded after
/// its version bump.
#[derive(Clone, Debug)]
struct ChangeLogEntry {
    version: u64,
    touched: Vec<InstanceHandle>,
    removed: Vec<RemovedRow>,
}

/// A stable name for one logical instance of a [`VersionedStore`]. Survives
/// merges and overwrites; dies when the instance is removed (or its object
/// retired).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstanceHandle(u32);

impl InstanceHandle {
    /// The handle's dense slot index (handles are allocated `0, 1, 2, …` in
    /// insertion order and never reused).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a handle from its dense slot index — the inverse of
    /// [`index`](Self::index). Crash recovery uses it to re-materialise the
    /// handles a logged mutation batch named; a handle fabricated for a slot
    /// the store never allocated simply names no row.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        InstanceHandle(index as u32)
    }
}

/// A mutable uncertain dataset with delta-append storage, tombstone
/// deletions, a monotonically increasing version and logarithmic-method
/// compaction. See the [module docs](self) for the semantics.
#[derive(Clone, Debug)]
pub struct VersionedStore {
    dim: usize,
    /// Dim-strided coordinates of every physical row (live or tombstoned).
    coords: Vec<f64>,
    /// Existence probability of every physical row.
    probs: Vec<f64>,
    /// Owning (store) object id of every physical row.
    objects: Vec<u32>,
    /// Tombstone bitmap: `false` = the row was deleted or overwritten.
    alive: Vec<bool>,
    /// Rows `[0, base_rows)` formed the canonical base at the last merge;
    /// everything after is the unindexed delta tail.
    base_rows: usize,
    /// Number of tombstoned rows still physically present.
    dead_rows: usize,
    /// Live rows of each object in logical (canonical) order. Retired or
    /// emptied objects keep an empty list; store object ids never shift.
    object_rows: Vec<Vec<u32>>,
    object_retired: Vec<bool>,
    object_labels: Vec<Option<String>>,
    /// Handle slot → current row (`NO_ROW` once the instance is gone).
    handle_to_row: Vec<u32>,
    /// Row → handle slot (valid only while the row is live).
    row_to_handle: Vec<u32>,
    version: u64,
    epoch: u64,
    /// `true` once a consumer asked for per-mutation change summaries.
    track_changes: bool,
    /// Bounded per-mutation log (only filled while `track_changes`), oldest
    /// entry first. Runtime-only: not part of [`Self::encode_state`].
    change_log: VecDeque<ChangeLogEntry>,
}

impl VersionedStore {
    /// Creates an empty store of the given dimensionality (version 0).
    pub fn new(dim: usize) -> Self {
        assert!(dim >= 1, "stores must have at least one dimension");
        Self {
            dim,
            coords: Vec::new(),
            probs: Vec::new(),
            objects: Vec::new(),
            alive: Vec::new(),
            base_rows: 0,
            dead_rows: 0,
            object_rows: Vec::new(),
            object_retired: Vec::new(),
            object_labels: Vec::new(),
            handle_to_row: Vec::new(),
            row_to_handle: Vec::new(),
            version: 0,
            epoch: 0,
            track_changes: false,
            change_log: VecDeque::new(),
        }
    }

    /// Seeds a store from a frozen dataset (the bulk load). The dataset
    /// becomes the canonical base: row `i` is instance `i`, bit for bit, and
    /// the returned store is at version 0.
    pub fn from_dataset(dataset: &UncertainDataset) -> Self {
        let mut store = Self::new(dataset.dim());
        for obj in dataset.objects() {
            let object = store.push_object_slot(obj.label.clone());
            for &iid in &obj.instance_ids {
                let inst = dataset.instance(iid);
                store.push_row(object, &inst.coords, inst.prob);
            }
        }
        store.base_rows = store.probs.len();
        store.version = 0;
        store
    }

    // ---- mutations --------------------------------------------------------

    /// Adds a new uncertain object with its initial instances; returns the
    /// store object id. Bumps the version once.
    ///
    /// # Panics
    /// Panics on dimension mismatches, probabilities outside `(0, 1]`, an
    /// empty instance list, or a total probability above one.
    pub fn insert_object(
        &mut self,
        label: Option<String>,
        instances: Vec<(Vec<f64>, f64)>,
    ) -> usize {
        assert!(
            !instances.is_empty(),
            "objects must start with at least one instance"
        );
        let total: f64 = instances.iter().map(|(_, p)| p).sum();
        assert!(
            total <= 1.0 + 1e-9,
            "total probability of an object must not exceed 1 (got {total})"
        );
        let object = self.push_object_slot(label);
        let mut touched = Vec::with_capacity(instances.len());
        for (coords, prob) in instances {
            touched.push(self.push_row(object, &coords, prob));
        }
        self.version += 1;
        self.log_change(touched, Vec::new());
        object
    }

    /// Appends a new instance to an existing object; returns its stable
    /// handle. Bumps the version.
    ///
    /// # Panics
    /// Panics if the object does not exist or is retired, on dimension or
    /// probability violations, or if the object's total probability would
    /// exceed one.
    pub fn insert_instance(&mut self, object: usize, coords: &[f64], prob: f64) -> InstanceHandle {
        assert!(object < self.object_rows.len(), "unknown object {object}");
        assert!(
            !self.object_retired[object],
            "object {object} is retired and cannot gain instances"
        );
        let total = self.live_total_prob(object) + prob;
        assert!(
            total <= 1.0 + 1e-9,
            "object {object} total probability would reach {total}"
        );
        let handle = self.push_row(object, coords, prob);
        self.version += 1;
        self.log_change(vec![handle], Vec::new());
        handle
    }

    /// Deletes one instance (tombstone). Returns the logical position the
    /// instance held inside its object — callers maintaining per-object
    /// prefix indexes (see `arsp_index::DeltaForest`) use it to decide
    /// whether their folded prefix was invalidated. Bumps the version.
    ///
    /// # Panics
    /// Panics if the handle is already dead.
    pub fn remove_instance(&mut self, handle: InstanceHandle) -> usize {
        let row = self.handle_to_row[handle.index()];
        assert!(row != NO_ROW, "handle names a removed instance");
        let position = self.kill(handle);
        self.version += 1;
        // Tombstoned rows keep their columns, so the pre-image can be
        // captured after the kill from the old row id.
        if self.track_changes {
            let removed = self.removed_row(row as usize);
            self.log_change(vec![handle], vec![removed]);
        }
        position
    }

    /// Overwrites one instance (revised coordinates and/or probability): the
    /// old row is tombstoned and a replacement row is appended to the delta
    /// tail — the handle stays valid and now names the replacement. The
    /// instance moves to its object's logical tail (see the
    /// [module docs](self)). Returns the logical position the *old* row held.
    /// Bumps the version once.
    ///
    /// # Panics
    /// Panics if the handle is dead, on dimension or probability violations,
    /// or if the object's total probability would exceed one.
    pub fn update_instance(&mut self, handle: InstanceHandle, coords: &[f64], prob: f64) -> usize {
        let row = self.handle_to_row[handle.index()];
        assert!(row != NO_ROW, "handle names a removed instance");
        let object = self.objects[row as usize] as usize;
        let total = self.live_total_prob(object) - self.probs[row as usize] + prob;
        assert!(
            total <= 1.0 + 1e-9,
            "object {object} total probability would reach {total}"
        );
        let position = self.kill(handle);
        // The handle keeps naming the logical instance: the replacement row
        // is appended under the *existing* handle slot, not a fresh one.
        let new_row = self.push_row_raw(object, coords, prob, handle.0);
        self.handle_to_row[handle.index()] = new_row;
        self.version += 1;
        if self.track_changes {
            let removed = self.removed_row(row as usize);
            self.log_change(vec![handle], vec![removed]);
        }
        position
    }

    /// Retires a whole object: every live instance is tombstoned and the
    /// object can never gain instances again. Bumps the version once.
    ///
    /// # Panics
    /// Panics if the object does not exist or is already retired.
    pub fn retire_object(&mut self, object: usize) {
        assert!(object < self.object_rows.len(), "unknown object {object}");
        assert!(
            !self.object_retired[object],
            "object {object} is already retired"
        );
        let rows = std::mem::take(&mut self.object_rows[object]);
        let mut touched = Vec::new();
        let mut removed = Vec::new();
        for &row in &rows {
            if self.track_changes {
                touched.push(InstanceHandle(self.row_to_handle[row as usize]));
                removed.push(self.removed_row(row as usize));
            }
            self.alive[row as usize] = false;
            self.handle_to_row[self.row_to_handle[row as usize] as usize] = NO_ROW;
            self.dead_rows += 1;
        }
        self.object_retired[object] = true;
        self.version += 1;
        self.log_change(touched, removed);
    }

    /// Folds the delta tail and the tombstones into a fresh canonical base
    /// (the logarithmic-method merge): live rows are rewritten in canonical
    /// order, dead rows are dropped, and the epoch bumps. The logical content
    /// — and therefore the version — is unchanged. Returns the physical row
    /// remap (`old row → new row`, `u32::MAX` for dropped rows) so callers
    /// holding row references can translate them.
    pub fn merge(&mut self) -> Vec<u32> {
        let old_total = self.probs.len();
        let live = self.num_live_instances();
        let mut remap = vec![NO_ROW; old_total];
        let mut coords = Vec::with_capacity(live * self.dim);
        let mut probs = Vec::with_capacity(live);
        let mut objects = Vec::with_capacity(live);
        let mut row_to_handle = vec![0u32; live];
        let mut next = 0u32;
        for (object, rows) in self.object_rows.iter_mut().enumerate() {
            for row in rows.iter_mut() {
                let old = *row as usize;
                remap[old] = next;
                coords.extend_from_slice(&self.coords[old * self.dim..(old + 1) * self.dim]);
                probs.push(self.probs[old]);
                objects.push(object as u32);
                row_to_handle[next as usize] = self.row_to_handle[old];
                *row = next;
                next += 1;
            }
        }
        for slot in self.handle_to_row.iter_mut() {
            if *slot != NO_ROW {
                *slot = remap[*slot as usize];
            }
        }
        self.coords = coords;
        self.probs = probs;
        self.objects = objects;
        self.row_to_handle = row_to_handle;
        self.alive = vec![true; live];
        self.base_rows = live;
        self.dead_rows = 0;
        self.epoch += 1;
        remap
    }

    // ---- change summaries -------------------------------------------------

    /// Starts recording a bounded per-mutation change log so
    /// [`Self::changes_since`] can answer. Mutations applied before this
    /// call are not recorded: the first summary a consumer can get covers
    /// versions after the current one. Idempotent.
    pub fn enable_change_tracking(&mut self) {
        self.track_changes = true;
    }

    /// `true` once [`Self::enable_change_tracking`] has been called.
    #[inline]
    pub fn change_tracking_enabled(&self) -> bool {
        self.track_changes
    }

    /// Everything that changed in `(since, version]`, merged from the
    /// change log. Returns `None` when the window is not fully covered —
    /// tracking disabled (or enabled after `since`), the bounded log
    /// already evicted part of the window, or `since` lies in the future —
    /// in which case the consumer must fall back to a full rebuild.
    /// `since == version` yields an empty summary.
    pub fn changes_since(&self, since: u64) -> Option<ChangeSummary> {
        if !self.track_changes || since > self.version {
            return None;
        }
        let mut summary = ChangeSummary {
            from_version: since,
            to_version: self.version,
            ..ChangeSummary::default()
        };
        if since == self.version {
            return Some(summary);
        }
        // Every mutation bumps the version by exactly one and appends one
        // entry, so full coverage of `(since, version]` means exactly
        // `version - since` entries in the window.
        let needed = (self.version - since) as usize;
        let in_window = self
            .change_log
            .iter()
            .filter(|entry| entry.version > since)
            .count();
        if in_window != needed {
            return None;
        }
        let mut seen = std::collections::HashSet::new();
        for entry in self.change_log.iter().filter(|e| e.version > since) {
            for &handle in &entry.touched {
                if seen.insert(handle) {
                    summary.touched.push(handle);
                }
            }
            summary.removed.extend(entry.removed.iter().cloned());
        }
        Some(summary)
    }

    /// Appends one change-log entry for the mutation that just bumped the
    /// version, evicting the oldest entry at capacity. No-op while tracking
    /// is disabled.
    fn log_change(&mut self, touched: Vec<InstanceHandle>, removed: Vec<RemovedRow>) {
        if !self.track_changes {
            return;
        }
        if self.change_log.len() == CHANGE_LOG_CAPACITY {
            self.change_log.pop_front();
        }
        self.change_log.push_back(ChangeLogEntry {
            version: self.version,
            touched,
            removed,
        });
    }

    /// The pre-image of a (possibly just-tombstoned) row — tombstones keep
    /// their columns, so this is valid right after a kill.
    fn removed_row(&self, row: usize) -> RemovedRow {
        RemovedRow {
            object: self.objects[row] as usize,
            coords: self.coords_of(row).to_vec(),
            prob: self.probs[row],
        }
    }

    // ---- version / shape accessors ---------------------------------------

    /// The monotonically increasing logical version (bumped by every
    /// mutation, never by [`VersionedStore::merge`]).
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The physical epoch: bumped by every [`VersionedStore::merge`]. Row ids
    /// are only comparable within one epoch.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Dataset dimensionality `d`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of physical rows (live and tombstoned) in the current epoch.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.probs.len()
    }

    /// Number of rows in the canonical base of the current epoch.
    #[inline]
    pub fn base_rows(&self) -> usize {
        self.base_rows
    }

    /// Number of rows appended since the last merge (the unindexed delta
    /// tail, live or already re-tombstoned).
    #[inline]
    pub fn delta_rows(&self) -> usize {
        self.probs.len() - self.base_rows
    }

    /// Number of tombstoned rows still physically present.
    #[inline]
    pub fn dead_rows(&self) -> usize {
        self.dead_rows
    }

    /// The merge-pressure figure the delta policy thresholds: delta appends
    /// plus tombstones. (A dead delta row counts on both sides — it burdens
    /// both the tail scan and the skip bitmap.)
    #[inline]
    pub fn pending_rows(&self) -> usize {
        self.delta_rows() + self.dead_rows
    }

    /// Number of live instances `n`.
    #[inline]
    pub fn num_live_instances(&self) -> usize {
        self.probs.len() - self.dead_rows
    }

    /// Number of store object slots ever created (live, emptied and retired).
    #[inline]
    pub fn num_objects(&self) -> usize {
        self.object_rows.len()
    }

    /// Number of objects with at least one live instance — the `m` of the
    /// snapshot dataset.
    pub fn num_live_objects(&self) -> usize {
        self.object_rows.iter().filter(|r| !r.is_empty()).count()
    }

    // ---- row accessors ----------------------------------------------------

    /// Coordinates of one physical row (valid for tombstoned rows too).
    #[inline]
    pub fn coords_of(&self, row: usize) -> &[f64] {
        &self.coords[row * self.dim..(row + 1) * self.dim]
    }

    /// Existence probability of one physical row.
    #[inline]
    pub fn prob(&self, row: usize) -> f64 {
        self.probs[row]
    }

    /// Owning store object of one physical row.
    #[inline]
    pub fn object_of(&self, row: usize) -> usize {
        self.objects[row] as usize
    }

    /// `true` while the row has not been tombstoned.
    #[inline]
    pub fn is_live(&self, row: usize) -> bool {
        self.alive[row]
    }

    /// The current row named by a handle (`None` once the instance is gone).
    #[inline]
    pub fn row_of(&self, handle: InstanceHandle) -> Option<usize> {
        match self.handle_to_row.get(handle.index()) {
            Some(&row) if row != NO_ROW => Some(row as usize),
            _ => None,
        }
    }

    /// The handle of a live row.
    ///
    /// # Panics
    /// Panics if the row is tombstoned (dead rows have no handle).
    pub fn handle_of_row(&self, row: usize) -> InstanceHandle {
        assert!(self.alive[row], "tombstoned rows have no handle");
        InstanceHandle(self.row_to_handle[row])
    }

    // ---- object accessors -------------------------------------------------

    /// The live rows of one object in logical (canonical) order.
    #[inline]
    pub fn object_rows(&self, object: usize) -> &[u32] {
        &self.object_rows[object]
    }

    /// `true` once the object has been retired.
    #[inline]
    pub fn is_retired(&self, object: usize) -> bool {
        self.object_retired[object]
    }

    /// The label of one object, if any.
    pub fn object_label(&self, object: usize) -> Option<&str> {
        self.object_labels[object].as_deref()
    }

    /// Sum of the live instance probabilities of one object (in logical
    /// order — the same accumulation order the snapshot dataset validates).
    pub fn live_total_prob(&self, object: usize) -> f64 {
        self.object_rows[object]
            .iter()
            .map(|&r| self.probs[r as usize])
            .sum()
    }

    /// The dense snapshot object id of a store object (`None` when the
    /// object has no live instance and is therefore absent from the
    /// snapshot).
    pub fn snapshot_object_id(&self, object: usize) -> Option<usize> {
        if object >= self.object_rows.len() || self.object_rows[object].is_empty() {
            return None;
        }
        Some(
            self.object_rows[..object]
                .iter()
                .filter(|r| !r.is_empty())
                .count(),
        )
    }

    // ---- canonical snapshots ---------------------------------------------

    /// Iterates the live rows in canonical (object-major, logical) order —
    /// position `i` of this iteration is snapshot instance id `i`.
    pub fn canonical_rows(&self) -> impl Iterator<Item = usize> + '_ {
        self.object_rows
            .iter()
            .flat_map(|rows| rows.iter().map(|&r| r as usize))
    }

    /// Materialises the current logical content as an [`UncertainDataset`]
    /// (canonical order, labels preserved) — what a cold engine would be
    /// built on.
    pub fn snapshot_dataset(&self) -> UncertainDataset {
        let mut dataset = UncertainDataset::new(self.dim);
        for (object, rows) in self.object_rows.iter().enumerate() {
            if rows.is_empty() {
                continue;
            }
            let instances = rows
                .iter()
                .map(|&r| (self.coords_of(r as usize).to_vec(), self.probs[r as usize]))
                .collect();
            dataset.push_labeled_object(self.object_labels[object].clone(), instances);
        }
        dataset
    }

    /// Materialises the current logical content as a [`FlatStore`] — bitwise
    /// identical to `FlatStore::from_dataset(&self.snapshot_dataset())`, one
    /// gather pass, no intermediate dataset.
    pub fn snapshot_flat(&self) -> FlatStore {
        let n = self.num_live_instances();
        let mut coords = Vec::with_capacity(n * self.dim);
        let mut probs = Vec::with_capacity(n);
        let mut objects = Vec::with_capacity(n);
        let mut object_start = Vec::with_capacity(self.num_live_objects() + 1);
        object_start.push(0u32);
        let mut snapshot_object = 0u32;
        for rows in &self.object_rows {
            if rows.is_empty() {
                continue;
            }
            for &r in rows {
                let row = r as usize;
                coords.extend_from_slice(self.coords_of(row));
                probs.push(self.probs[row]);
                objects.push(snapshot_object);
            }
            object_start.push(probs.len() as u32);
            snapshot_object += 1;
        }
        FlatStore::from_parts(self.dim, coords, probs, objects, object_start)
    }

    /// Structural self-check for tests: returns the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        let total = self.probs.len();
        if self.coords.len() != total * self.dim || self.objects.len() != total {
            return Err("column lengths disagree".into());
        }
        let mut live_seen = 0;
        for (object, rows) in self.object_rows.iter().enumerate() {
            if self.object_retired[object] && !rows.is_empty() {
                return Err(format!("retired object {object} still owns rows"));
            }
            for &r in rows {
                let row = r as usize;
                if !self.alive[row] {
                    return Err(format!("object {object} lists tombstoned row {row}"));
                }
                if self.objects[row] as usize != object {
                    return Err(format!("row {row} is mis-assigned"));
                }
                if self.handle_to_row[self.row_to_handle[row] as usize] != r {
                    return Err(format!("handle round-trip broken for row {row}"));
                }
                live_seen += 1;
            }
            let prob = self.live_total_prob(object);
            if prob > 1.0 + 1e-6 {
                return Err(format!("object {object} has total probability {prob}"));
            }
        }
        if live_seen != self.num_live_instances() {
            return Err("live-row accounting disagrees with the tombstone bitmap".into());
        }
        Ok(())
    }

    // ---- state serialisation ---------------------------------------------

    /// Serialises the complete store state — every column, map and counter,
    /// floats as IEEE-754 bit patterns — such that
    /// [`decode_state`](Self::decode_state) reconstructs a store
    /// indistinguishable from this one (same version, epoch, rows, handles).
    /// Two stores encode identically **iff** they are bitwise-equal, so the
    /// byte string doubles as an equality witness in the crash-recovery
    /// tests. The snapshot layer (`crate::persist`) wraps this payload in a
    /// checksummed frame.
    pub fn encode_state(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let push_u64 = |out: &mut Vec<u8>, v: u64| out.extend_from_slice(&v.to_le_bytes());
        push_u64(&mut out, self.dim as u64);
        push_u64(&mut out, self.version);
        push_u64(&mut out, self.epoch);
        push_u64(&mut out, self.base_rows as u64);
        push_u64(&mut out, self.dead_rows as u64);
        push_u64(&mut out, self.coords.len() as u64);
        for &c in &self.coords {
            push_u64(&mut out, c.to_bits());
        }
        push_u64(&mut out, self.probs.len() as u64);
        for &p in &self.probs {
            push_u64(&mut out, p.to_bits());
        }
        push_u64(&mut out, self.objects.len() as u64);
        for &o in &self.objects {
            out.extend_from_slice(&o.to_le_bytes());
        }
        push_u64(&mut out, self.alive.len() as u64);
        out.extend(self.alive.iter().map(|&a| a as u8));
        push_u64(&mut out, self.object_rows.len() as u64);
        for rows in &self.object_rows {
            push_u64(&mut out, rows.len() as u64);
            for &r in rows {
                out.extend_from_slice(&r.to_le_bytes());
            }
        }
        push_u64(&mut out, self.object_retired.len() as u64);
        out.extend(self.object_retired.iter().map(|&r| r as u8));
        push_u64(&mut out, self.object_labels.len() as u64);
        for label in &self.object_labels {
            match label {
                None => out.push(0),
                Some(text) => {
                    out.push(1);
                    push_u64(&mut out, text.len() as u64);
                    out.extend_from_slice(text.as_bytes());
                }
            }
        }
        push_u64(&mut out, self.handle_to_row.len() as u64);
        for &h in &self.handle_to_row {
            out.extend_from_slice(&h.to_le_bytes());
        }
        push_u64(&mut out, self.row_to_handle.len() as u64);
        for &h in &self.row_to_handle {
            out.extend_from_slice(&h.to_le_bytes());
        }
        out
    }

    /// Reconstructs a store from [`encode_state`](Self::encode_state) bytes.
    /// Returns a description of the first structural problem found — a
    /// truncated or corrupted payload never yields a half-built store.
    pub fn decode_state(bytes: &[u8]) -> Result<Self, String> {
        let mut cursor = StateCursor { bytes, at: 0 };
        let dim = cursor.u64()? as usize;
        if dim == 0 {
            return Err("state declares a zero-dimensional store".into());
        }
        let version = cursor.u64()?;
        let epoch = cursor.u64()?;
        let base_rows = cursor.u64()? as usize;
        let dead_rows = cursor.u64()? as usize;
        let n_coords = cursor.len_prefix()?;
        let mut coords = Vec::with_capacity(n_coords);
        for _ in 0..n_coords {
            coords.push(f64::from_bits(cursor.u64()?));
        }
        let n_probs = cursor.len_prefix()?;
        let mut probs = Vec::with_capacity(n_probs);
        for _ in 0..n_probs {
            probs.push(f64::from_bits(cursor.u64()?));
        }
        let n_objects = cursor.len_prefix()?;
        let mut objects = Vec::with_capacity(n_objects);
        for _ in 0..n_objects {
            objects.push(cursor.u32()?);
        }
        let n_alive = cursor.len_prefix()?;
        let mut alive = Vec::with_capacity(n_alive);
        for _ in 0..n_alive {
            alive.push(cursor.u8()? != 0);
        }
        let n_object_rows = cursor.len_prefix()?;
        let mut object_rows = Vec::with_capacity(n_object_rows);
        for _ in 0..n_object_rows {
            let n_rows = cursor.len_prefix()?;
            let mut rows = Vec::with_capacity(n_rows);
            for _ in 0..n_rows {
                rows.push(cursor.u32()?);
            }
            object_rows.push(rows);
        }
        let n_retired = cursor.len_prefix()?;
        let mut object_retired = Vec::with_capacity(n_retired);
        for _ in 0..n_retired {
            object_retired.push(cursor.u8()? != 0);
        }
        let n_labels = cursor.len_prefix()?;
        let mut object_labels = Vec::with_capacity(n_labels);
        for _ in 0..n_labels {
            object_labels.push(match cursor.u8()? {
                0 => None,
                1 => {
                    let len = cursor.len_prefix()?;
                    let raw = cursor.take(len)?;
                    Some(
                        String::from_utf8(raw.to_vec())
                            .map_err(|_| "label is not valid UTF-8".to_string())?,
                    )
                }
                other => return Err(format!("bad label tag {other}")),
            });
        }
        let n_handles = cursor.len_prefix()?;
        let mut handle_to_row = Vec::with_capacity(n_handles);
        for _ in 0..n_handles {
            handle_to_row.push(cursor.u32()?);
        }
        let n_row_handles = cursor.len_prefix()?;
        let mut row_to_handle = Vec::with_capacity(n_row_handles);
        for _ in 0..n_row_handles {
            row_to_handle.push(cursor.u32()?);
        }
        if cursor.at != bytes.len() {
            return Err(format!(
                "{} trailing bytes after the store state",
                bytes.len() - cursor.at
            ));
        }
        // Index-validity checks up front, so `validate()` (and every later
        // accessor) can index without panicking on a corrupt payload.
        let total = probs.len();
        if objects.len() != total
            || alive.len() != total
            || row_to_handle.len() != total
            || coords.len() != total * dim
        {
            return Err("column lengths disagree".into());
        }
        if base_rows > total || dead_rows > total {
            return Err("row counters exceed the physical row count".into());
        }
        if object_retired.len() != object_rows.len() || object_labels.len() != object_rows.len() {
            return Err("object column lengths disagree".into());
        }
        if object_rows.iter().flatten().any(|&r| r as usize >= total) {
            return Err("object lists a row beyond the store".into());
        }
        if row_to_handle
            .iter()
            .any(|&h| h as usize >= handle_to_row.len())
        {
            return Err("row names a handle slot beyond the table".into());
        }
        if handle_to_row
            .iter()
            .any(|&r| r != NO_ROW && r as usize >= total)
        {
            return Err("handle names a row beyond the store".into());
        }
        let store = Self {
            dim,
            coords,
            probs,
            objects,
            alive,
            base_rows,
            dead_rows,
            object_rows,
            object_retired,
            object_labels,
            handle_to_row,
            row_to_handle,
            version,
            epoch,
            // Change tracking is runtime-only state: a decoded store starts
            // with it disabled and an empty log, so the first
            // `changes_since` after a restart reports the gap (`None`) and
            // consumers rebuild rather than trust a hole in the history.
            track_changes: false,
            change_log: VecDeque::new(),
        };
        store.validate()?;
        Ok(store)
    }

    // ---- internals --------------------------------------------------------

    fn push_object_slot(&mut self, label: Option<String>) -> usize {
        self.object_rows.push(Vec::new());
        self.object_retired.push(false);
        self.object_labels.push(label);
        self.object_rows.len() - 1
    }

    /// Appends one physical row and allocates a fresh handle for it.
    fn push_row(&mut self, object: usize, coords: &[f64], prob: f64) -> InstanceHandle {
        let handle = InstanceHandle(self.handle_to_row.len() as u32);
        let row = self.push_row_raw(object, coords, prob, handle.0);
        self.handle_to_row.push(row);
        handle
    }

    /// Appends one physical row under an existing or about-to-exist handle
    /// slot; the caller wires up `handle_to_row`. Returns the new row id.
    fn push_row_raw(&mut self, object: usize, coords: &[f64], prob: f64, handle_slot: u32) -> u32 {
        assert_eq!(coords.len(), self.dim, "instance dimensionality mismatch");
        assert!(
            prob > 0.0 && prob <= 1.0 + 1e-12,
            "instance probabilities must lie in (0, 1]"
        );
        assert!(
            coords.iter().all(|c| c.is_finite()),
            "non-finite coordinate"
        );
        let row = self.probs.len() as u32;
        self.coords.extend_from_slice(coords);
        self.probs.push(prob);
        self.objects.push(object as u32);
        self.alive.push(true);
        self.object_rows[object].push(row);
        self.row_to_handle.push(handle_slot);
        row
    }

    /// Tombstones the row a handle names; returns the logical position the
    /// row held inside its object.
    fn kill(&mut self, handle: InstanceHandle) -> usize {
        let row = self.handle_to_row[handle.index()];
        assert!(row != NO_ROW, "handle names a removed instance");
        let object = self.objects[row as usize] as usize;
        let position = self.object_rows[object]
            .iter()
            .position(|&r| r == row)
            .expect("live rows are listed by their object");
        self.object_rows[object].remove(position);
        self.alive[row as usize] = false;
        self.handle_to_row[handle.index()] = NO_ROW;
        self.dead_rows += 1;
        position
    }
}

/// Bounds-checked little-endian reader over an
/// [`encode_state`](VersionedStore::encode_state) payload.
struct StateCursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl StateCursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], String> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| format!("state truncated at byte {}", self.at))?;
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        let raw = self.take(4)?;
        Ok(u32::from_le_bytes(raw.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, String> {
        let raw = self.take(8)?;
        Ok(u64::from_le_bytes(raw.try_into().expect("8 bytes")))
    }

    /// A length prefix, sanity-bounded by the bytes actually remaining so a
    /// corrupt length can never trigger a huge allocation.
    fn len_prefix(&mut self) -> Result<usize, String> {
        let len = self.u64()? as usize;
        if len > self.bytes.len() - self.at {
            return Err(format!("length prefix {len} exceeds the payload"));
        }
        Ok(len)
    }
}

/// A thread-safe registry of *epoch pins*: readers that are holding on to the
/// logical content of one store version. The registry is pure accounting — it
/// never blocks a writer — but it is the ground truth an MVCC serving layer
/// (see `arsp_core::service`) consults before reclaiming the cached artifacts
/// of a superseded version: a snapshot may be dropped only once
/// [`EpochPinRegistry::pin_count`] for its version reaches zero.
///
/// Registration and release are symmetric; a pin that is registered and never
/// released (a leaked reader) keeps its version pinned forever, which is
/// exactly the conservative behaviour reclamation wants.
#[derive(Debug, Default)]
pub struct EpochPinRegistry {
    /// version → number of outstanding pins (entries are removed at zero, so
    /// the map size is the number of distinct pinned versions).
    pins: Mutex<HashMap<u64, u64>>,
    /// Total pins ever registered (monotone).
    registered: AtomicU64,
    /// Total pins released (monotone; `registered - released` = active pins).
    released: AtomicU64,
}

impl EpochPinRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn map(&self) -> MutexGuard<'_, HashMap<u64, u64>> {
        lock(&self.pins)
    }

    /// Registers one pin on `version`; returns the version's new pin count.
    pub fn register(&self, version: u64) -> u64 {
        self.registered.fetch_add(1, Ordering::Relaxed);
        let mut map = self.map();
        let count = map.entry(version).or_insert(0);
        *count += 1;
        *count
    }

    /// Releases one pin on `version`; returns the version's remaining pin
    /// count (zero means the version is now unpinned and may be reclaimed).
    ///
    /// # Panics
    /// Panics if the version has no outstanding pin — a release without a
    /// matching register is an accounting bug worth failing fast on.
    pub fn release(&self, version: u64) -> u64 {
        let mut map = self.map();
        let count = map
            .get_mut(&version)
            .unwrap_or_else(|| panic!("version {version} has no outstanding pin"));
        *count -= 1;
        let remaining = *count;
        if remaining == 0 {
            map.remove(&version);
        }
        self.released.fetch_add(1, Ordering::Relaxed);
        remaining
    }

    /// Number of outstanding pins on one version.
    pub fn pin_count(&self, version: u64) -> u64 {
        self.map().get(&version).copied().unwrap_or(0)
    }

    /// Total outstanding pins across all versions.
    pub fn active_pins(&self) -> u64 {
        self.registered.load(Ordering::Relaxed) - self.released.load(Ordering::Relaxed)
    }

    /// Total pins ever registered.
    pub fn total_registered(&self) -> u64 {
        self.registered.load(Ordering::Relaxed)
    }

    /// The distinct pinned versions, ascending.
    pub fn pinned_versions(&self) -> Vec<u64> {
        let mut versions: Vec<u64> = self.map().keys().copied().collect();
        versions.sort_unstable();
        versions
    }

    /// The oldest pinned version (`None` when nothing is pinned) — the
    /// horizon below which every snapshot is reclaimable.
    pub fn min_pinned(&self) -> Option<u64> {
        self.map().keys().copied().min()
    }

    /// Registers one pin on `version` and returns an RAII [`PinGuard`] that
    /// releases it on drop — **including during an unwind**, so a reader that
    /// panics mid-query can never pin a version forever. Callers that need
    /// the release ordered against other state (e.g. under a lock) call
    /// [`PinGuard::release`] explicitly; the drop is then a no-op.
    pub fn register_guarded(self: &Arc<Self>, version: u64) -> PinGuard {
        self.register(version);
        PinGuard {
            registry: Arc::clone(self),
            version,
            released: false,
        }
    }
}

/// An RAII epoch pin (see [`EpochPinRegistry::register_guarded`]): exactly
/// one release per registration, on explicit [`release`](PinGuard::release)
/// or on drop, whichever comes first — panics included.
#[derive(Debug)]
pub struct PinGuard {
    registry: Arc<EpochPinRegistry>,
    version: u64,
    released: bool,
}

impl PinGuard {
    /// The version this guard pins.
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Releases the pin now and returns the version's remaining pin count.
    /// Idempotent: a second call (or the eventual drop) does nothing and
    /// reports the current count.
    pub fn release(&mut self) -> u64 {
        if self.released {
            return self.registry.pin_count(self.version);
        }
        self.released = true;
        self.registry.release(self.version)
    }
}

impl Drop for PinGuard {
    fn drop(&mut self) {
        if !self.released {
            self.released = true;
            self.registry.release(self.version);
        }
    }
}

/// A memoised snapshot materialiser: repeated snapshot requests at an
/// unchanged `(version, epoch)` hand out the *same* `Arc` instead of
/// re-gathering the columns — the cheap snapshot cloning the serving layer's
/// publish path and any cold-rebuild verifier lean on. The cache never
/// returns stale content: any mutation or merge changes the key and forces a
/// fresh gather.
#[derive(Debug, Default)]
pub struct SnapshotCache {
    flat: Mutex<Option<(u64, u64, Arc<FlatStore>)>>,
    dataset: Mutex<Option<(u64, u64, Arc<UncertainDataset>)>>,
}

impl SnapshotCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The store's current [`VersionedStore::snapshot_flat`], shared: bitwise
    /// the cold gather, one gather per `(version, epoch)`.
    pub fn flat(&self, store: &VersionedStore) -> Arc<FlatStore> {
        let key = (store.version(), store.epoch());
        let mut guard = lock(&self.flat);
        if let Some((v, e, flat)) = guard.as_ref() {
            if (*v, *e) == key {
                return Arc::clone(flat);
            }
        }
        let flat = Arc::new(store.snapshot_flat());
        *guard = Some((key.0, key.1, Arc::clone(&flat)));
        flat
    }

    /// The store's current [`VersionedStore::snapshot_dataset`], shared: one
    /// materialisation per `(version, epoch)`.
    pub fn dataset(&self, store: &VersionedStore) -> Arc<UncertainDataset> {
        let key = (store.version(), store.epoch());
        let mut guard = lock(&self.dataset);
        if let Some((v, e, dataset)) = guard.as_ref() {
            if (*v, *e) == key {
                return Arc::clone(dataset);
            }
        }
        let dataset = Arc::new(store.snapshot_dataset());
        *guard = Some((key.0, key.1, Arc::clone(&dataset)));
        dataset
    }
}

impl Clone for SnapshotCache {
    /// Cloning shares the cached `Arc`s (cheap), not the mutexes: the clone
    /// starts with the same memoised snapshots and diverges independently.
    fn clone(&self) -> Self {
        Self {
            flat: Mutex::new(lock(&self.flat).clone()),
            dataset: Mutex::new(lock(&self.dataset).clone()),
        }
    }
}

/// Splits `0..num_objects` into `num_shards` contiguous object-id ranges,
/// as balanced as possible (the first `num_objects % num_shards` ranges get
/// one extra object). Ranges tile the id space in order: concatenating the
/// per-range slices in shard order reproduces the original object order,
/// which is what makes a sharded engine's union dataset bitwise equal to
/// the unsharded one. Trailing ranges may be empty when there are fewer
/// objects than shards.
///
/// # Panics
/// Panics if `num_shards` is zero.
pub fn shard_ranges(num_objects: usize, num_shards: usize) -> Vec<std::ops::Range<usize>> {
    assert!(num_shards >= 1, "a cluster needs at least one shard");
    let base = num_objects / num_shards;
    let extra = num_objects % num_shards;
    let mut ranges = Vec::with_capacity(num_shards);
    let mut start = 0;
    for shard in 0..num_shards {
        let len = base + usize::from(shard < extra);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// The shard owning `object` under [`shard_ranges`] partitioning — the
/// write-routing inverse of the range table.
///
/// # Panics
/// Panics if `object >= num_objects` or `num_shards` is zero.
pub fn shard_of_object(object: usize, num_objects: usize, num_shards: usize) -> usize {
    assert!(object < num_objects, "object id out of range");
    let base = num_objects / num_shards;
    let extra = num_objects % num_shards;
    let fat = extra * (base + 1);
    if object < fat {
        object / (base + 1)
    } else {
        extra + (object - fat) / base.max(1)
    }
}

/// Slices `dataset` into per-shard datasets along [`shard_ranges`], labels
/// preserved. Pushing each slice's objects in range order means shard-order
/// concatenation of the slices is exactly `dataset` again — the invariant
/// the cross-shard merge's bitwise-agreement contract rests on.
pub fn partition_dataset(dataset: &UncertainDataset, num_shards: usize) -> Vec<UncertainDataset> {
    shard_ranges(dataset.num_objects(), num_shards)
        .into_iter()
        .map(|range| {
            let mut shard = UncertainDataset::new(dataset.dim());
            for object in range {
                let meta = dataset.object(object);
                let instances = dataset
                    .object_instances(object)
                    .map(|inst| (inst.coords.clone(), inst.prob))
                    .collect();
                shard.push_labeled_object(meta.label.clone(), instances);
            }
            shard
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_running_example;

    fn flat_bits(flat: &FlatStore) -> (usize, Vec<u64>, Vec<u64>, Vec<u32>) {
        (
            flat.dim(),
            flat.coords().iter().map(|c| c.to_bits()).collect(),
            flat.probs().iter().map(|p| p.to_bits()).collect(),
            flat.objects().to_vec(),
        )
    }

    /// The store's one agreement obligation: `snapshot_flat` is bitwise the
    /// flat store a cold build would produce.
    fn assert_snapshot_consistent(store: &VersionedStore) {
        store.validate().expect("store invariants");
        let dataset = store.snapshot_dataset();
        dataset.validate().expect("snapshot dataset invariants");
        let direct = store.snapshot_flat();
        let via_dataset = FlatStore::from_dataset(&dataset);
        assert_eq!(flat_bits(&direct), flat_bits(&via_dataset));
        assert_eq!(direct.num_objects(), via_dataset.num_objects());
        assert_eq!(store.canonical_rows().count(), store.num_live_instances());
    }

    #[test]
    fn seed_store_mirrors_the_dataset() {
        let d = paper_running_example();
        let store = VersionedStore::from_dataset(&d);
        assert_eq!(store.version(), 0);
        assert_eq!(store.epoch(), 0);
        assert_eq!(store.num_live_instances(), d.num_instances());
        assert_eq!(store.num_live_objects(), d.num_objects());
        assert_eq!(store.delta_rows(), 0);
        assert_eq!(store.pending_rows(), 0);
        assert_snapshot_consistent(&store);
        for inst in d.instances() {
            assert_eq!(store.coords_of(inst.id), inst.coords.as_slice());
            assert_eq!(store.prob(inst.id).to_bits(), inst.prob.to_bits());
            assert_eq!(store.object_of(inst.id), inst.object);
        }
    }

    /// Paper-example shape but with probability slack so inserts fit the
    /// per-object budget.
    fn slack_store() -> VersionedStore {
        let mut d = UncertainDataset::new(2);
        d.push_object(vec![(vec![2.0, 9.0], 0.4), (vec![12.0, 14.0], 0.4)]);
        d.push_object(vec![
            (vec![3.0, 4.0], 0.3),
            (vec![8.0, 3.0], 0.3),
            (vec![9.0, 12.0], 0.3),
        ]);
        d.push_object(vec![(vec![1.0, 8.0], 0.5)]);
        d.push_object(vec![(vec![7.0, 15.0], 0.45), (vec![13.0, 6.0], 0.45)]);
        VersionedStore::from_dataset(&d)
    }

    #[test]
    fn mutations_bump_the_version_and_keep_snapshots_canonical() {
        let mut store = slack_store();
        let h = store.insert_instance(0, &[1.5, 1.5], 0.0001);
        assert_eq!(store.version(), 1);
        assert_eq!(store.delta_rows(), 1);
        assert_snapshot_consistent(&store);

        // The appended instance sits at its object's logical tail: object 0
        // had snapshot ids {0, 1}, the new row is snapshot id 2.
        let snap = store.snapshot_dataset();
        assert_eq!(snap.object(0).num_instances(), 3);
        assert_eq!(snap.instance(2).coords, vec![1.5, 1.5]);

        store.remove_instance(h);
        assert_eq!(store.version(), 2);
        assert_eq!(store.row_of(h), None);
        assert_eq!(store.dead_rows(), 1);
        assert_snapshot_consistent(&store);
        assert_eq!(store.snapshot_dataset().object(0).num_instances(), 2);
    }

    #[test]
    fn overwrite_keeps_the_handle_and_moves_to_the_tail() {
        let mut store = VersionedStore::from_dataset(&paper_running_example());
        let h = store.handle_of_row(2); // first instance of T2
        let old_position = store.update_instance(h, &[2.5, 3.5], 0.25);
        assert_eq!(old_position, 0);
        let row = store.row_of(h).expect("handle survives overwrites");
        assert_eq!(store.coords_of(row), &[2.5, 3.5]);
        assert_eq!(store.prob(row), 0.25);
        assert_eq!(store.object_of(row), 1);
        // Logical tail: T2's canonical order is now (t2,2), (t2,3), revised.
        assert_eq!(store.object_rows(1).last().copied(), Some(row as u32));
        assert_snapshot_consistent(&store);
    }

    #[test]
    fn change_tracking_is_off_by_default_and_idempotent() {
        let mut store = slack_store();
        assert!(!store.change_tracking_enabled());
        assert_eq!(store.changes_since(0), None, "disabled: no summaries");
        store.insert_instance(0, &[1.5, 1.5], 0.0001);
        store.enable_change_tracking();
        store.enable_change_tracking();
        assert!(store.change_tracking_enabled());
        // Mutations before enabling are not recorded: the gap reports None.
        assert_eq!(store.changes_since(0), None);
        let empty = store.changes_since(1).expect("current version");
        assert_eq!((empty.from_version, empty.to_version), (1, 1));
        assert!(empty.touched.is_empty() && empty.removed.is_empty());
    }

    #[test]
    fn changes_since_reports_every_mutation_kind() {
        let mut store = slack_store();
        store.enable_change_tracking();

        let h = store.insert_instance(0, &[1.5, 1.5], 0.0001); // v1
        let victim = store.handle_of_row(3); // second instance of object 1
        let old_coords = store.coords_of(3).to_vec();
        let old_prob = store.prob(3);
        store.remove_instance(victim); // v2
        let revised = store.handle_of_row(4);
        let revised_coords = store.coords_of(4).to_vec();
        let revised_prob = store.prob(4);
        store.update_instance(revised, &[6.0, 6.0], 0.2); // v3
        store.retire_object(2); // v4
        let retired = store.changes_since(3).expect("covered");
        assert_eq!(retired.touched.len(), 1, "object 2 had one instance");
        assert_eq!(retired.removed.len(), 1);
        assert_eq!(retired.removed[0].object, 2);

        let summary = store.changes_since(0).expect("log covers everything");
        assert_eq!((summary.from_version, summary.to_version), (0, 4));
        assert!(summary.touched.contains(&h));
        assert!(summary.touched.contains(&victim));
        assert!(summary.touched.contains(&revised));
        // Pre-images: the removed row, the overwritten row's old state, and
        // the retired object's instance — coords and probs verbatim.
        assert_eq!(summary.removed.len(), 3);
        assert!(summary
            .removed
            .iter()
            .any(|r| r.object == 1 && r.coords == old_coords && r.prob == old_prob));
        assert!(summary
            .removed
            .iter()
            .any(|r| r.object == 1 && r.coords == revised_coords && r.prob == revised_prob));

        // insert_object touches every new instance.
        let object = store.insert_object(None, vec![(vec![4.0, 4.0], 0.5)]); // v5
        let since4 = store.changes_since(4).expect("covered");
        assert_eq!(since4.touched.len(), 1);
        assert_eq!(
            store.object_of(store.row_of(since4.touched[0]).expect("live")),
            object
        );
        assert!(since4.removed.is_empty());

        // Dedup: updating the same handle twice reports it once.
        store.update_instance(h, &[1.6, 1.6], 0.0001); // v6
        store.update_instance(h, &[1.7, 1.7], 0.0001); // v7
        let since5 = store.changes_since(5).expect("covered");
        assert_eq!(since5.touched, vec![h]);
        assert_eq!(since5.removed.len(), 2, "one pre-image per overwrite");

        // Future versions are an error, not a summary.
        assert_eq!(store.changes_since(99), None);
    }

    #[test]
    fn merge_preserves_the_change_log() {
        let mut store = slack_store();
        store.enable_change_tracking();
        let h = store.insert_instance(0, &[1.5, 1.5], 0.0001); // v1
        store.merge(); // epoch bump, no version bump
        let summary = store.changes_since(0).expect("log survives the merge");
        assert_eq!(summary.touched, vec![h]);
        assert_eq!(store.changes_since(1).expect("current").touched, vec![]);
    }

    #[test]
    fn retire_object_drops_it_from_the_snapshot() {
        let mut store = VersionedStore::from_dataset(&paper_running_example());
        store.retire_object(1);
        assert!(store.is_retired(1));
        assert_eq!(store.num_live_objects(), 3);
        assert_eq!(store.snapshot_object_id(1), None);
        // Later objects compact down in the snapshot.
        assert_eq!(store.snapshot_object_id(2), Some(1));
        assert_snapshot_consistent(&store);
        let snap = store.snapshot_dataset();
        assert_eq!(snap.num_objects(), 3);
        assert_eq!(snap.num_instances(), 7);
    }

    #[test]
    fn merge_compacts_without_changing_the_logical_content() {
        let mut store = slack_store();
        let h_new = store.insert_instance(3, &[6.0, 6.0], 0.0001);
        let h_old = store.handle_of_row(0);
        store.remove_instance(store.handle_of_row(1));
        let before = flat_bits(&store.snapshot_flat());
        let before_version = store.version();

        let remap = store.merge();
        assert_eq!(store.epoch(), 1);
        assert_eq!(store.version(), before_version, "merges are physical only");
        assert_eq!(store.delta_rows(), 0);
        assert_eq!(store.dead_rows(), 0);
        assert_eq!(store.pending_rows(), 0);
        assert_eq!(remap[1], u32::MAX, "dropped rows map to the sentinel");
        assert_eq!(flat_bits(&store.snapshot_flat()), before);
        assert_snapshot_consistent(&store);

        // Handles survive the row renumbering.
        let row = store.row_of(h_new).expect("handle survives merges");
        assert_eq!(store.coords_of(row), &[6.0, 6.0]);
        assert_eq!(store.row_of(h_old), Some(0));

        // And the store keeps working after the merge.
        let h2 = store.insert_instance(0, &[9.0, 9.0], 0.0001);
        assert_eq!(store.delta_rows(), 1);
        store.remove_instance(h2);
        assert_snapshot_consistent(&store);
    }

    #[test]
    fn empty_and_reborn_objects() {
        let mut store = VersionedStore::new(2);
        let a = store.insert_object(Some("a".into()), vec![(vec![0.1, 0.2], 0.5)]);
        let b = store.insert_object(None, vec![(vec![0.3, 0.4], 1.0)]);
        assert_eq!((a, b), (0, 1));
        assert_eq!(store.object_label(0), Some("a"));

        // Emptying an object removes it from the snapshot but does not
        // retire it: it can gain instances again.
        let h = store.handle_of_row(0);
        store.remove_instance(h);
        assert_eq!(store.num_live_objects(), 1);
        assert_eq!(store.snapshot_object_id(0), None);
        assert_snapshot_consistent(&store);
        let _ = store.insert_instance(a, &[0.5, 0.5], 0.7);
        assert_eq!(store.num_live_objects(), 2);
        assert_snapshot_consistent(&store);
    }

    #[test]
    #[should_panic]
    fn insert_on_retired_object_panics() {
        let mut store = VersionedStore::new(2);
        let a = store.insert_object(None, vec![(vec![0.1, 0.2], 0.5)]);
        store.retire_object(a);
        let _ = store.insert_instance(a, &[0.3, 0.3], 0.1);
    }

    #[test]
    #[should_panic]
    fn probability_budget_is_enforced_across_mutations() {
        let mut store = VersionedStore::new(2);
        let a = store.insert_object(None, vec![(vec![0.1, 0.2], 0.7)]);
        let _ = store.insert_instance(a, &[0.3, 0.3], 0.5);
    }

    #[test]
    #[should_panic]
    fn double_remove_panics() {
        let mut store = VersionedStore::new(2);
        let a = store.insert_object(None, vec![(vec![0.1, 0.2], 0.5)]);
        let h = store.handle_of_row(store.object_rows(a)[0] as usize);
        store.remove_instance(h);
        store.remove_instance(h);
    }

    #[test]
    fn update_budget_excludes_the_replaced_row() {
        let mut store = VersionedStore::new(2);
        let a = store.insert_object(None, vec![(vec![0.1, 0.2], 0.9)]);
        let h = store.handle_of_row(store.object_rows(a)[0] as usize);
        // 0.9 → 0.95 is fine because the old mass is released first.
        let _ = store.update_instance(h, &[0.1, 0.2], 0.95);
        assert!((store.live_total_prob(a) - 0.95).abs() < 1e-12);
    }

    #[test]
    fn pin_registry_counts_exactly() {
        let pins = EpochPinRegistry::new();
        assert_eq!(pins.active_pins(), 0);
        assert_eq!(pins.min_pinned(), None);

        assert_eq!(pins.register(3), 1);
        assert_eq!(pins.register(3), 2);
        assert_eq!(pins.register(7), 1);
        assert_eq!(pins.pin_count(3), 2);
        assert_eq!(pins.pin_count(7), 1);
        assert_eq!(pins.pin_count(99), 0);
        assert_eq!(pins.active_pins(), 3);
        assert_eq!(pins.total_registered(), 3);
        assert_eq!(pins.pinned_versions(), vec![3, 7]);
        assert_eq!(pins.min_pinned(), Some(3));

        assert_eq!(pins.release(3), 1);
        assert_eq!(pins.release(3), 0);
        assert_eq!(pins.pin_count(3), 0);
        assert_eq!(pins.pinned_versions(), vec![7]);
        assert_eq!(pins.min_pinned(), Some(7));
        assert_eq!(pins.release(7), 0);
        assert_eq!(pins.active_pins(), 0);
        assert_eq!(pins.total_registered(), 3);
    }

    #[test]
    #[should_panic]
    fn releasing_an_unpinned_version_panics() {
        let pins = EpochPinRegistry::new();
        pins.register(1);
        pins.release(1);
        pins.release(1);
    }

    #[test]
    fn pin_registry_is_shareable_across_threads() {
        let pins = Arc::new(EpochPinRegistry::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let pins = Arc::clone(&pins);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        pins.register(t % 2);
                        pins.release(t % 2);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("pin thread panicked");
        }
        assert_eq!(pins.active_pins(), 0);
        assert_eq!(pins.total_registered(), 400);
        assert_eq!(pins.pinned_versions(), Vec::<u64>::new());
    }

    #[test]
    fn pin_guard_releases_once_on_drop_or_explicitly() {
        let pins = Arc::new(EpochPinRegistry::new());
        {
            let _guard = pins.register_guarded(5);
            assert_eq!(pins.pin_count(5), 1);
        }
        assert_eq!(pins.pin_count(5), 0, "drop released the pin");

        let mut guard = pins.register_guarded(6);
        assert_eq!(guard.version(), 6);
        assert_eq!(guard.release(), 0);
        assert_eq!(guard.release(), 0, "release is idempotent");
        drop(guard);
        assert_eq!(pins.active_pins(), 0, "drop after release is a no-op");
    }

    #[test]
    fn pin_guard_releases_through_a_panic() {
        let pins = Arc::new(EpochPinRegistry::new());
        let passenger = pins.register_guarded(9);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = pins.register_guarded(9);
            panic!("reader died mid-query");
        }));
        assert!(caught.is_err());
        assert_eq!(
            pins.pin_count(9),
            1,
            "the unwound guard released its pin; the live one remains"
        );
        drop(passenger);
        assert_eq!(pins.active_pins(), 0);
    }

    #[test]
    fn state_roundtrips_bitwise_through_encode_decode() {
        let mut store = slack_store();
        let h = store.insert_instance(0, &[1.5, 1.5], 0.0001);
        store.update_instance(h, &[1.25, 1.75], 0.0002);
        store.remove_instance(store.handle_of_row(1));
        store.retire_object(2);
        store.merge();
        let _ = store.insert_instance(0, &[9.0, 9.0], 0.0001);

        let bytes = store.encode_state();
        let decoded = VersionedStore::decode_state(&bytes).expect("state decodes");
        assert_eq!(decoded.encode_state(), bytes, "round-trip is bitwise");
        assert_eq!(decoded.version(), store.version());
        assert_eq!(decoded.epoch(), store.epoch());
        assert_eq!(
            flat_bits(&decoded.snapshot_flat()),
            flat_bits(&store.snapshot_flat())
        );
        // The decoded store is fully operational: handles keep working.
        assert_eq!(decoded.row_of(h), store.row_of(h));
    }

    #[test]
    fn truncated_or_corrupt_state_is_rejected_not_panicked() {
        let store = slack_store();
        let bytes = store.encode_state();
        for cut in [0, 1, 7, 8, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                VersionedStore::decode_state(&bytes[..cut]).is_err(),
                "truncation at {cut} must be detected"
            );
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(VersionedStore::decode_state(&trailing).is_err());
    }

    #[test]
    fn snapshot_cache_shares_until_the_store_moves() {
        let mut store = slack_store();
        let cache = SnapshotCache::new();

        let f1 = cache.flat(&store);
        let f2 = cache.flat(&store);
        assert!(Arc::ptr_eq(&f1, &f2), "unchanged version re-gathered");
        assert_eq!(flat_bits(&f1), flat_bits(&store.snapshot_flat()));
        let d1 = cache.dataset(&store);
        assert!(Arc::ptr_eq(&d1, &cache.dataset(&store)));

        // Clones share the memoised snapshot, then diverge independently.
        let clone = cache.clone();
        assert!(Arc::ptr_eq(&f1, &clone.flat(&store)));

        // A mutation changes the version: fresh gather, fresh Arc.
        let h = store.insert_instance(0, &[1.5, 1.5], 0.0001);
        let f3 = cache.flat(&store);
        assert!(!Arc::ptr_eq(&f1, &f3));
        assert_eq!(flat_bits(&f3), flat_bits(&store.snapshot_flat()));
        assert!(!Arc::ptr_eq(&d1, &cache.dataset(&store)));

        // A merge keeps the version but bumps the epoch: also a fresh gather
        // (row ids moved), still bitwise the cold snapshot.
        store.remove_instance(h);
        let f4 = cache.flat(&store);
        store.merge();
        let f5 = cache.flat(&store);
        assert!(!Arc::ptr_eq(&f4, &f5));
        assert_eq!(flat_bits(&f5), flat_bits(&store.snapshot_flat()));
    }

    #[test]
    fn shard_ranges_tile_the_id_space_evenly() {
        for num_objects in 0..40 {
            for num_shards in 1..9 {
                let ranges = shard_ranges(num_objects, num_shards);
                assert_eq!(ranges.len(), num_shards);
                let mut next = 0;
                for range in &ranges {
                    assert_eq!(range.start, next, "ranges must tile contiguously");
                    next = range.end;
                }
                assert_eq!(next, num_objects, "ranges must cover every object");
                let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                let (min, max) = (sizes.iter().min().copied(), sizes.iter().max().copied());
                assert!(
                    max.unwrap_or(0) - min.unwrap_or(0) <= 1,
                    "ranges must be balanced within one object"
                );
                for range in &ranges {
                    for object in range.clone() {
                        let shard = shard_of_object(object, num_objects, num_shards);
                        assert!(
                            ranges[shard].contains(&object),
                            "shard_of_object must invert shard_ranges"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn partitioned_datasets_concatenate_back_bitwise() {
        let dataset = paper_running_example();
        for num_shards in [1, 2, 3, 7, 11] {
            let parts = partition_dataset(&dataset, num_shards);
            assert_eq!(parts.len(), num_shards);
            let mut union = UncertainDataset::new(dataset.dim());
            for part in &parts {
                for object in 0..part.num_objects() {
                    union.push_labeled_object(
                        part.object(object).label.clone(),
                        part.object_instances(object)
                            .map(|inst| (inst.coords.clone(), inst.prob))
                            .collect(),
                    );
                }
            }
            assert_eq!(
                flat_bits(&FlatStore::from_dataset(&union)),
                flat_bits(&FlatStore::from_dataset(&dataset)),
                "shard-order concatenation must reproduce the dataset"
            );
        }
    }
}
