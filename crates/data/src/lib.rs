//! Uncertain dataset model and workload generators for the ARSP reproduction.
//!
//! * [`dataset`] — the uncertain data model of §II-B: objects, instances,
//!   existence probabilities, plus the certain-dataset type used by the
//!   eclipse experiments and the aggregated-rskyline comparison.
//! * [`flat`] — the columnar [`FlatStore`] twin of the dataset: one
//!   contiguous dim-strided coordinate array plus parallel probability and
//!   object columns, the layout every hot loop streams.
//! * [`versioned`] — the mutable [`VersionedStore`]: delta rows appended to
//!   the columnar tail, deletions as a tombstone bitmap, a monotonically
//!   increasing version, stable instance handles and logarithmic-method
//!   compaction — the substrate of the dynamic engine. Also home of the
//!   [`EpochPinRegistry`] and [`SnapshotCache`] the concurrent serving layer
//!   builds its epoch-based snapshot reclamation on.
//! * [`possible_world`] — possible-world enumeration (equation 1), used by
//!   the ENUM baseline and as the ground-truth oracle in tests.
//! * [`synthetic`] — the synthetic generator of §V-A: IND / ANTI / CORR
//!   object centres, per-object hyper-rectangles of edge length `~N(l/2, l/8)`,
//!   instance counts uniform in `[1, cnt]`, and the `ϕ` fraction of objects
//!   with total probability below one.
//! * [`persist`] — crash-consistent persistence for the versioned store: a
//!   checksummed write-ahead log of mutation batches, atomic snapshots, and
//!   a recovery path that truncates torn tails and replays the WAL onto the
//!   last snapshot ([`DurableStore`]).
//! * [`failpoint`] — the deterministic fail-point registry the crash and
//!   fault-injection suites drive: named sites on the persistence and
//!   shard write paths that tests arm to inject panics, I/O errors,
//!   delays, or seeded probabilistic crashes.
//! * [`real`] — simulated stand-ins for the IIP, CAR and NBA datasets (see
//!   DESIGN.md for the substitution rationale).
//! * [`constraints_gen`] — the WR and IM constraint generators of §V-A and
//!   helpers for weight-ratio ranges.

#![deny(unsafe_code)]

pub mod constraints_gen;
pub mod dataset;
pub mod failpoint;
pub mod flat;
pub mod persist;
pub mod possible_world;
pub mod real;
pub mod sync;
pub mod synthetic;
pub mod versioned;

pub use constraints_gen::{im_constraints, weak_ranking_constraints};
pub use dataset::{
    paper_running_example, CertainDataset, Instance, UncertainDataset, UncertainObject,
};
pub use flat::FlatStore;
pub use persist::{DurableStore, MutationOp, RecoveryReport};
pub use possible_world::{enumerate_possible_worlds, PossibleWorld};
pub use synthetic::{Distribution, SyntheticConfig};
pub use versioned::{
    partition_dataset, shard_of_object, shard_ranges, ChangeSummary, EpochPinRegistry,
    InstanceHandle, PinGuard, RemovedRow, SnapshotCache, VersionedStore,
};
