//! Possible-world semantics (equation 1 of the paper).
//!
//! An uncertain dataset induces a probability distribution over *possible
//! worlds*: each object independently materialises as one of its instances
//! (with the instance's probability) or not at all (with the remaining
//! probability mass). The number of possible worlds is
//! `Π_i (n_i + [Σp < 1])`, exponential in `m`, so enumeration is only usable
//! for the ENUM baseline on toy inputs and as the ground-truth oracle in
//! tests — exactly how the paper uses it.

use crate::dataset::UncertainDataset;

/// One possible world: for each object either the global id of the chosen
/// instance or `None` when the object is absent, together with the world's
/// probability.
#[derive(Clone, Debug, PartialEq)]
pub struct PossibleWorld {
    /// Per-object choice (indexed by object id).
    pub choice: Vec<Option<usize>>,
    /// Probability of observing this world (equation 1).
    pub prob: f64,
}

impl PossibleWorld {
    /// Global instance ids present in this world.
    pub fn present_instances(&self) -> impl Iterator<Item = usize> + '_ {
        self.choice.iter().filter_map(|c| *c)
    }
}

/// Enumerates every possible world with non-zero probability.
///
/// Worlds whose probability would be zero (an object with `Σp = 1` being
/// absent) are skipped. The probabilities of the returned worlds sum to one
/// up to floating-point error.
///
/// # Panics
/// Panics if the enumeration would produce more than `max_worlds` worlds —
/// a guard against accidentally calling this on a non-toy dataset.
pub fn enumerate_possible_worlds(
    dataset: &UncertainDataset,
    max_worlds: usize,
) -> Vec<PossibleWorld> {
    // Pre-compute the per-object alternatives: (instance id or absent, prob).
    let mut alternatives: Vec<Vec<(Option<usize>, f64)>> = Vec::new();
    let mut world_count: usize = 1;
    for obj in dataset.objects() {
        let mut alts: Vec<(Option<usize>, f64)> = obj
            .instance_ids
            .iter()
            .map(|&id| (Some(id), dataset.instance(id).prob))
            .collect();
        let absence = obj.absence_prob();
        if absence > 1e-12 {
            alts.push((None, absence));
        }
        world_count = world_count.saturating_mul(alts.len());
        assert!(
            world_count <= max_worlds,
            "possible-world enumeration would exceed {max_worlds} worlds"
        );
        alternatives.push(alts);
    }

    let mut worlds = Vec::with_capacity(world_count);
    let mut choice = vec![None; alternatives.len()];
    enumerate_rec(&alternatives, 0, 1.0, &mut choice, &mut worlds);
    worlds
}

fn enumerate_rec(
    alternatives: &[Vec<(Option<usize>, f64)>],
    depth: usize,
    prob: f64,
    choice: &mut Vec<Option<usize>>,
    out: &mut Vec<PossibleWorld>,
) {
    if depth == alternatives.len() {
        out.push(PossibleWorld {
            choice: choice.clone(),
            prob,
        });
        return;
    }
    for &(alt, p) in &alternatives[depth] {
        choice[depth] = alt;
        enumerate_rec(alternatives, depth + 1, prob * p, choice, out);
    }
    choice[depth] = None;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::paper_running_example;
    use crate::dataset::UncertainDataset;

    #[test]
    fn paper_example_world_count_and_mass() {
        let d = paper_running_example();
        // All objects have Σp = 1, so the world count is 2 × 3 × 3 × 2 = 36.
        let worlds = enumerate_possible_worlds(&d, 100);
        assert_eq!(worlds.len(), 36);
        let mass: f64 = worlds.iter().map(|w| w.prob).sum();
        assert!((mass - 1.0).abs() < 1e-9);
        // The world of Example 1 (first instance of every object) has
        // probability 1/36.
        let target: Vec<Option<usize>> = d
            .objects()
            .iter()
            .map(|o| Some(o.instance_ids[0]))
            .collect();
        let w = worlds.iter().find(|w| w.choice == target).unwrap();
        assert!((w.prob - 1.0 / 36.0).abs() < 1e-9);
    }

    #[test]
    fn absent_objects_enumerate_correctly() {
        let mut d = UncertainDataset::new(1);
        d.push_object(vec![(vec![0.0], 0.25), (vec![1.0], 0.25)]);
        d.push_object(vec![(vec![2.0], 1.0)]);
        let worlds = enumerate_possible_worlds(&d, 10);
        // Object 0 has 3 alternatives (two instances + absent), object 1 has 1.
        assert_eq!(worlds.len(), 3);
        let mass: f64 = worlds.iter().map(|w| w.prob).sum();
        assert!((mass - 1.0).abs() < 1e-12);
        let absent = worlds.iter().find(|w| w.choice[0].is_none()).unwrap();
        assert!((absent.prob - 0.5).abs() < 1e-12);
        assert_eq!(absent.present_instances().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    #[should_panic]
    fn world_limit_enforced() {
        let mut d = UncertainDataset::new(1);
        for i in 0..20 {
            d.push_object(vec![(vec![i as f64], 0.5), (vec![i as f64 + 0.5], 0.5)]);
        }
        let _ = enumerate_possible_worlds(&d, 1000);
    }
}
