//! Constraint generators (§V-A of the paper).
//!
//! Two families of linear constraints on the weight simplex are used in the
//! evaluation:
//!
//! * **WR (weak ranking)** — `ω[i] ≥ ω[i+1]` for `1 ≤ i ≤ c`; the preference
//!   region always has exactly `d` vertices when `c = d − 1`.
//! * **IM (interactive)** — the interactive-learning style generator: pick a
//!   hidden weight `ω*` uniformly on the simplex, then for each constraint
//!   draw two random objects `t_i, s_i ∈ [0,1]^d` and keep the half of the
//!   simplex split by `Σ_j (t_i[j] − s_i[j])·ω[j] = 0` that contains `ω*`.
//!   The number of region vertices typically grows with `c`.
//!
//! Weight-ratio ranges (the `q` parameter of Fig. 8) are also generated here.

use arsp_geometry::constraints::{ConstraintSet, LinearConstraint, WeightRatio};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// WR constraints: a thin wrapper over
/// [`ConstraintSet::weak_ranking`] provided for symmetry with
/// [`im_constraints`].
pub fn weak_ranking_constraints(dim: usize, c: usize) -> ConstraintSet {
    ConstraintSet::weak_ranking(dim, c)
}

/// IM constraints: `c` random half-space constraints through the simplex,
/// each oriented so that a hidden random weight `ω*` stays feasible. The
/// returned region is therefore never empty.
pub fn im_constraints(dim: usize, c: usize, seed: u64) -> ConstraintSet {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let omega_star = random_simplex_weight(dim, &mut rng);
    let mut cs = ConstraintSet::new(dim);
    for _ in 0..c {
        let t: Vec<f64> = (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect();
        let s: Vec<f64> = (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect();
        let mut coeffs: Vec<f64> = t.iter().zip(&s).map(|(a, b)| a - b).collect();
        let at_star: f64 = coeffs.iter().zip(&omega_star).map(|(a, w)| a * w).sum();
        // Keep the side containing ω*: flip the constraint when ω* violates
        // `coeffs · ω ≤ 0`.
        if at_star > 0.0 {
            for v in coeffs.iter_mut() {
                *v = -*v;
            }
        }
        cs.push(LinearConstraint::new(coeffs, 0.0));
    }
    cs
}

/// A weight drawn uniformly from the unit simplex (via normalised
/// exponential samples).
pub fn random_simplex_weight(dim: usize, rng: &mut impl Rng) -> Vec<f64> {
    let raw: Vec<f64> = (0..dim)
        .map(|_| -f64::ln(rng.gen_range(f64::MIN_POSITIVE..1.0)))
        .collect();
    let sum: f64 = raw.iter().sum();
    raw.into_iter().map(|x| x / sum).collect()
}

/// Uniform weight-ratio ranges `[l, h]^(d−1)` matching the `q` settings of
/// Fig. 8 (e.g. `q = [0.36, 2.75]`).
pub fn uniform_ratio(dim: usize, low: f64, high: f64) -> WeightRatio {
    WeightRatio::uniform(dim, low, high)
}

/// The four ratio ranges the paper sweeps in Fig. 8(c), from widest to
/// narrowest.
pub fn fig8_ratio_ranges() -> Vec<(f64, f64)> {
    vec![(0.18, 5.67), (0.36, 2.75), (0.58, 1.73), (0.84, 1.19)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use arsp_geometry::polytope::preference_region_vertices;

    #[test]
    fn wr_matches_geometry_builder() {
        let a = weak_ranking_constraints(4, 3);
        let b = ConstraintSet::weak_ranking(4, 3);
        assert_eq!(a.constraints(), b.constraints());
    }

    #[test]
    fn im_region_is_always_feasible() {
        for seed in 0..20 {
            for c in 1..6 {
                let cs = im_constraints(4, c, seed);
                assert_eq!(cs.len(), c);
                assert!(cs.is_feasible(), "seed {seed}, c = {c}");
                assert!(!preference_region_vertices(&cs).is_empty());
            }
        }
    }

    #[test]
    fn im_vertex_count_tends_to_grow_with_c() {
        // The paper notes that the number of vertices of the IM region
        // usually increases with c, unlike WR.  Check the average over a few
        // seeds rather than a single instance.
        let avg_vertices = |c: usize| -> f64 {
            (0..12)
                .map(|seed| preference_region_vertices(&im_constraints(4, c, seed)).len())
                .sum::<usize>() as f64
                / 12.0
        };
        assert!(avg_vertices(5) > avg_vertices(1));
    }

    #[test]
    fn im_is_deterministic_per_seed() {
        let a = im_constraints(3, 4, 99);
        let b = im_constraints(3, 4, 99);
        assert_eq!(a.constraints(), b.constraints());
    }

    #[test]
    fn random_simplex_weight_is_on_simplex() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..50 {
            let w = random_simplex_weight(5, &mut rng);
            assert_eq!(w.len(), 5);
            assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(w.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn fig8_ranges_are_ordered_wide_to_narrow() {
        let ranges = fig8_ratio_ranges();
        assert_eq!(ranges.len(), 4);
        for w in ranges.windows(2) {
            let width = |r: (f64, f64)| r.1 / r.0;
            assert!(width(w[0]) > width(w[1]));
        }
        let wr = uniform_ratio(3, 0.36, 2.75);
        assert_eq!(wr.dim(), 3);
    }
}
