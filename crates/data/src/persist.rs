//! Crash-consistent persistence for [`VersionedStore`]: a checksummed
//! write-ahead log of mutation batches plus atomic snapshots.
//!
//! [`DurableStore`] wraps a [`VersionedStore`] with a simple, provable
//! durability contract:
//!
//! * **Log-then-apply** — [`DurableStore::apply_batch`] encodes the batch,
//!   appends one length-prefixed, CRC-32-guarded record to `wal.log`,
//!   syncs it, and only then applies the ops to the in-memory store. An
//!   append that fails (injected or real I/O error) rolls the file back to
//!   its pre-append length, so the in-memory store and the durable state
//!   never drift apart on the error path.
//! * **Atomic snapshots** — [`DurableStore::checkpoint`] serialises the
//!   full store state ([`VersionedStore::encode_state`]) into
//!   `snapshot.tmp`, syncs, renames over `snapshot.bin` (atomic on POSIX),
//!   fsyncs the parent directory so the rename itself survives power loss,
//!   and then truncates the WAL. A crash at any point leaves either the
//!   old snapshot or the new one — never a torn snapshot.
//! * **Recovery** — [`DurableStore::open`] loads the last snapshot,
//!   truncates any torn WAL tail (a record whose length or checksum does
//!   not hold), replays the intact records that postdate the snapshot, and
//!   skips the ones it already contains (each record carries the store
//!   version and epoch it was logged at, making replay idempotent). The
//!   recovered store is bitwise equal — [`VersionedStore::encode_state`]
//!   equal — to the store after *some prefix* of the submitted batches,
//!   which is exactly what the crash-recovery suite asserts for a kill at
//!   every registered fail-point site.
//!
//! Every point on the write path where a crash or I/O failure is
//! interesting is a named [`crate::failpoint`] site, so the test suite can
//! kill the path deterministically at each one.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::failpoint;
use crate::versioned::{InstanceHandle, VersionedStore};

/// Magic prefix of `snapshot.bin` (version 1 of the format).
const SNAPSHOT_MAGIC: &[u8; 8] = b"ARSPSNP1";

/// One logged mutation, mirroring the [`VersionedStore`] write API. A batch
/// of these is the unit of durability: either the whole batch survives a
/// crash or none of it does. Replaying a batch on the store it was logged
/// against reproduces the original mutations exactly (handle allocation is
/// deterministic, so logged handle indices stay valid).
#[derive(Clone, Debug, PartialEq)]
pub enum MutationOp {
    /// [`VersionedStore::insert_object`].
    InsertObject {
        /// Optional object label.
        label: Option<String>,
        /// Initial instances as `(coords, prob)` pairs.
        instances: Vec<(Vec<f64>, f64)>,
    },
    /// [`VersionedStore::insert_instance`].
    InsertInstance {
        /// Target store object id.
        object: u64,
        /// Instance coordinates.
        coords: Vec<f64>,
        /// Existence probability.
        prob: f64,
    },
    /// [`VersionedStore::update_instance`].
    UpdateInstance {
        /// The handle's slot index ([`InstanceHandle::index`]).
        handle: u64,
        /// Replacement coordinates.
        coords: Vec<f64>,
        /// Replacement probability.
        prob: f64,
    },
    /// [`VersionedStore::remove_instance`].
    RemoveInstance {
        /// The handle's slot index.
        handle: u64,
    },
    /// [`VersionedStore::retire_object`].
    RetireObject {
        /// Store object id to retire.
        object: u64,
    },
    /// [`VersionedStore::merge`] — physical compaction, logged so replay
    /// reproduces row ids (and therefore the bitwise store state) exactly.
    Merge,
}

impl MutationOp {
    /// Applies this op to a store, discarding the API's return value (replay
    /// needs only the state transition; handles are re-derived by index).
    pub fn apply_to(&self, store: &mut VersionedStore) {
        match self {
            MutationOp::InsertObject { label, instances } => {
                store.insert_object(label.clone(), instances.clone());
            }
            MutationOp::InsertInstance {
                object,
                coords,
                prob,
            } => {
                store.insert_instance(*object as usize, coords, *prob);
            }
            MutationOp::UpdateInstance {
                handle,
                coords,
                prob,
            } => {
                store.update_instance(InstanceHandle::from_index(*handle as usize), coords, *prob);
            }
            MutationOp::RemoveInstance { handle } => {
                store.remove_instance(InstanceHandle::from_index(*handle as usize));
            }
            MutationOp::RetireObject { object } => store.retire_object(*object as usize),
            MutationOp::Merge => {
                store.merge();
            }
        }
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            MutationOp::InsertObject { label, instances } => {
                out.push(0);
                match label {
                    None => out.push(0),
                    Some(text) => {
                        out.push(1);
                        out.extend_from_slice(&(text.len() as u32).to_le_bytes());
                        out.extend_from_slice(text.as_bytes());
                    }
                }
                out.extend_from_slice(&(instances.len() as u32).to_le_bytes());
                for (coords, prob) in instances {
                    encode_coords(out, coords);
                    out.extend_from_slice(&prob.to_bits().to_le_bytes());
                }
            }
            MutationOp::InsertInstance {
                object,
                coords,
                prob,
            } => {
                out.push(1);
                out.extend_from_slice(&object.to_le_bytes());
                encode_coords(out, coords);
                out.extend_from_slice(&prob.to_bits().to_le_bytes());
            }
            MutationOp::UpdateInstance {
                handle,
                coords,
                prob,
            } => {
                out.push(2);
                out.extend_from_slice(&handle.to_le_bytes());
                encode_coords(out, coords);
                out.extend_from_slice(&prob.to_bits().to_le_bytes());
            }
            MutationOp::RemoveInstance { handle } => {
                out.push(3);
                out.extend_from_slice(&handle.to_le_bytes());
            }
            MutationOp::RetireObject { object } => {
                out.push(4);
                out.extend_from_slice(&object.to_le_bytes());
            }
            MutationOp::Merge => out.push(5),
        }
    }

    fn decode_from(cursor: &mut WalCursor<'_>) -> io::Result<Self> {
        Ok(match cursor.u8()? {
            0 => {
                let label = match cursor.u8()? {
                    0 => None,
                    1 => {
                        let len = cursor.u32()? as usize;
                        let raw = cursor.take(len)?;
                        Some(String::from_utf8(raw.to_vec()).map_err(|_| {
                            io::Error::new(io::ErrorKind::InvalidData, "label is not UTF-8")
                        })?)
                    }
                    other => return Err(bad_data(format!("bad label tag {other}"))),
                };
                let n = cursor.u32()? as usize;
                let mut instances = Vec::with_capacity(n);
                for _ in 0..n {
                    let coords = decode_coords(cursor)?;
                    instances.push((coords, f64::from_bits(cursor.u64()?)));
                }
                MutationOp::InsertObject { label, instances }
            }
            1 => MutationOp::InsertInstance {
                object: cursor.u64()?,
                coords: decode_coords(cursor)?,
                prob: f64::from_bits(cursor.u64()?),
            },
            2 => MutationOp::UpdateInstance {
                handle: cursor.u64()?,
                coords: decode_coords(cursor)?,
                prob: f64::from_bits(cursor.u64()?),
            },
            3 => MutationOp::RemoveInstance {
                handle: cursor.u64()?,
            },
            4 => MutationOp::RetireObject {
                object: cursor.u64()?,
            },
            5 => MutationOp::Merge,
            other => return Err(bad_data(format!("bad mutation tag {other}"))),
        })
    }
}

fn encode_coords(out: &mut Vec<u8>, coords: &[f64]) {
    out.extend_from_slice(&(coords.len() as u32).to_le_bytes());
    for &c in coords {
        out.extend_from_slice(&c.to_bits().to_le_bytes());
    }
}

fn decode_coords(cursor: &mut WalCursor<'_>) -> io::Result<Vec<f64>> {
    let n = cursor.u32()? as usize;
    let mut coords = Vec::with_capacity(n.min(cursor.remaining() / 8));
    for _ in 0..n {
        coords.push(f64::from_bits(cursor.u64()?));
    }
    Ok(coords)
}

fn bad_data(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

/// Bounds-checked reader over one WAL record payload.
struct WalCursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl WalCursor<'_> {
    fn remaining(&self) -> usize {
        self.bytes.len() - self.at
    }

    fn take(&mut self, n: usize) -> io::Result<&[u8]> {
        if n > self.remaining() {
            return Err(bad_data("record payload truncated".into()));
        }
        let slice = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
}

/// CRC-32 (IEEE 802.3 polynomial, bit-reflected) — the WAL's and snapshot's
/// integrity check. Bitwise implementation; the payloads are small relative
/// to the file I/O around them.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// What [`DurableStore::open`] found and did while recovering.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// WAL records replayed onto the snapshot.
    pub records_replayed: u64,
    /// WAL records skipped because the snapshot already contained them
    /// (a crash between snapshot rename and WAL reset leaves such records).
    pub records_skipped: u64,
    /// Bytes of torn WAL tail truncated (an interrupted append).
    pub torn_bytes: u64,
    /// The store version after recovery.
    pub recovered_version: u64,
}

/// A [`VersionedStore`] with crash-consistent persistence — see the
/// [module docs](self) for the durability contract.
#[derive(Debug)]
pub struct DurableStore {
    store: VersionedStore,
    wal: File,
    wal_len: u64,
    dir: PathBuf,
}

impl DurableStore {
    fn wal_path(dir: &Path) -> PathBuf {
        dir.join("wal.log")
    }

    fn snapshot_path(dir: &Path) -> PathBuf {
        dir.join("snapshot.bin")
    }

    /// Creates a durable store at `dir` (created if absent) seeded with
    /// `store`: writes the initial snapshot and an empty WAL. Fails if the
    /// directory already holds a store.
    pub fn create(dir: impl AsRef<Path>, store: VersionedStore) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        if Self::snapshot_path(&dir).exists() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "directory already holds a durable store",
            ));
        }
        write_snapshot(&dir, &store)?;
        let wal = OpenOptions::new()
            .create(true)
            .truncate(true)
            .write(true)
            .open(Self::wal_path(&dir))?;
        wal.sync_data()?;
        Ok(Self {
            store,
            wal,
            wal_len: 0,
            dir,
        })
    }

    /// Opens and recovers the durable store at `dir`: loads the last
    /// snapshot, truncates any torn WAL tail, replays the intact records
    /// the snapshot predates. Returns the store and what recovery did.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<(Self, RecoveryReport)> {
        let dir = dir.as_ref().to_path_buf();
        // A leftover snapshot.tmp is an interrupted checkpoint that never
        // reached the atomic rename — the live snapshot is intact; drop it.
        let tmp = dir.join("snapshot.tmp");
        if tmp.exists() {
            fs::remove_file(&tmp)?;
        }
        let mut store = read_snapshot(&dir)?;

        let wal_path = Self::wal_path(&dir);
        let bytes = match fs::read(&wal_path) {
            Ok(bytes) => bytes,
            Err(err) if err.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(err) => return Err(err),
        };
        let mut report = RecoveryReport::default();
        let mut at = 0usize;
        loop {
            if bytes.len() - at < 8 {
                break; // clean end, or a tail shorter than a header
            }
            let len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4")) as usize;
            let crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().expect("4"));
            if bytes.len() - at - 8 < len {
                break; // torn payload
            }
            let payload = &bytes[at + 8..at + 8 + len];
            if crc32(payload) != crc {
                break; // interrupted write inside the payload
            }
            replay_record(&mut store, payload, &mut report)?;
            at += 8 + len;
        }
        report.torn_bytes = (bytes.len() - at) as u64;
        report.recovered_version = store.version();

        // Truncate the torn tail so future appends extend an intact log.
        // Keep the intact prefix: only the torn tail is cut, via `set_len`.
        let mut wal = OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(&wal_path)?;
        if report.torn_bytes > 0 {
            wal.set_len(at as u64)?;
            wal.sync_data()?;
        }
        wal.seek(SeekFrom::End(0))?;
        Ok((
            Self {
                store,
                wal,
                wal_len: at as u64,
                dir,
            },
            report,
        ))
    }

    /// The recovered / live store (read-only: mutations must go through
    /// [`apply_batch`](Self::apply_batch) to be durable).
    pub fn store(&self) -> &VersionedStore {
        &self.store
    }

    /// Durably applies one mutation batch: the batch is logged and synced
    /// *before* it touches the in-memory store, and an append that errors
    /// is rolled back byte-for-byte — on `Err` the store (memory and disk)
    /// is exactly as it was before the call.
    pub fn apply_batch(&mut self, ops: &[MutationOp]) -> io::Result<()> {
        let mut payload = Vec::new();
        payload.extend_from_slice(&self.store.version().to_le_bytes());
        payload.extend_from_slice(&self.store.epoch().to_le_bytes());
        payload.extend_from_slice(&(ops.len() as u32).to_le_bytes());
        for op in ops {
            op.encode_into(&mut payload);
        }
        match self.append_record(&payload) {
            Ok(()) => {}
            Err(err) => {
                // Roll the log back to its pre-append length; the injected
                // or real error then leaves no durable trace of the batch.
                self.wal.set_len(self.wal_len)?;
                self.wal.seek(SeekFrom::End(0))?;
                return Err(err);
            }
        }
        self.wal_len += 8 + payload.len() as u64;
        for op in ops {
            op.apply_to(&mut self.store);
        }
        Ok(())
    }

    fn append_record(&mut self, payload: &[u8]) -> io::Result<()> {
        let mut header = [0u8; 8];
        header[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        header[4..].copy_from_slice(&crc32(payload).to_le_bytes());
        failpoint::hit("wal.append.header")?;
        self.wal.write_all(&header)?;
        // The payload lands in two writes with a kill point between them, so
        // the crash matrix covers a mid-payload tear as well as a
        // header-only tear.
        let mid = payload.len() / 2;
        self.wal.write_all(&payload[..mid])?;
        failpoint::hit("wal.append.payload")?;
        self.wal.write_all(&payload[mid..])?;
        failpoint::hit("wal.append.sync")?;
        self.wal.sync_data()?;
        Ok(())
    }

    /// Checkpoints: atomically replaces the snapshot with the current store
    /// state, then truncates the WAL. A crash anywhere inside leaves a
    /// recoverable directory (old snapshot + full WAL, or new snapshot +
    /// stale-but-skippable WAL).
    pub fn checkpoint(&mut self) -> io::Result<()> {
        write_snapshot(&self.dir, &self.store)?;
        failpoint::hit("wal.reset")?;
        self.wal.set_len(0)?;
        self.wal.seek(SeekFrom::Start(0))?;
        self.wal.sync_data()?;
        self.wal_len = 0;
        Ok(())
    }
}

fn replay_record(
    store: &mut VersionedStore,
    payload: &[u8],
    report: &mut RecoveryReport,
) -> io::Result<()> {
    let mut cursor = WalCursor {
        bytes: payload,
        at: 0,
    };
    let pre_version = cursor.u64()?;
    let pre_epoch = cursor.u64()?;
    let n_ops = cursor.u32()? as usize;
    let mut ops = Vec::with_capacity(n_ops);
    for _ in 0..n_ops {
        ops.push(MutationOp::decode_from(&mut cursor)?);
    }
    if cursor.remaining() != 0 {
        return Err(bad_data("trailing bytes in a WAL record".into()));
    }
    let at = (store.version(), store.epoch());
    if (pre_version, pre_epoch) < at {
        report.records_skipped += 1; // the snapshot already contains it
        return Ok(());
    }
    if (pre_version, pre_epoch) > at {
        return Err(bad_data(format!(
            "WAL gap: record logged at version {pre_version} epoch {pre_epoch}, \
             store is at version {} epoch {}",
            at.0, at.1
        )));
    }
    for op in &ops {
        op.apply_to(store);
    }
    report.records_replayed += 1;
    Ok(())
}

fn write_snapshot(dir: &Path, store: &VersionedStore) -> io::Result<()> {
    let payload = store.encode_state();
    let mut framed = Vec::with_capacity(payload.len() + 20);
    framed.extend_from_slice(SNAPSHOT_MAGIC);
    framed.extend_from_slice(&crc32(&payload).to_le_bytes());
    framed.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    framed.extend_from_slice(&payload);

    let tmp = dir.join("snapshot.tmp");
    let mut file = File::create(&tmp)?;
    failpoint::hit("snapshot.write")?;
    file.write_all(&framed)?;
    failpoint::hit("snapshot.sync")?;
    file.sync_data()?;
    drop(file);
    failpoint::hit("snapshot.rename")?;
    fs::rename(&tmp, DurableStore::snapshot_path(dir))?;
    failpoint::hit("snapshot.dirsync")?;
    // The rename only updated the directory entry in memory; fsync the
    // parent directory so the publish itself survives power loss.
    File::open(dir)?.sync_all()?;
    Ok(())
}

fn read_snapshot(dir: &Path) -> io::Result<VersionedStore> {
    let mut file = File::open(DurableStore::snapshot_path(dir))?;
    let mut framed = Vec::new();
    file.read_to_end(&mut framed)?;
    if framed.len() < 20 || &framed[..8] != SNAPSHOT_MAGIC {
        return Err(bad_data("snapshot header is missing or foreign".into()));
    }
    let crc = u32::from_le_bytes(framed[8..12].try_into().expect("4"));
    let len = u64::from_le_bytes(framed[12..20].try_into().expect("8")) as usize;
    let payload = framed
        .get(20..20 + len)
        .ok_or_else(|| bad_data("snapshot payload truncated".into()))?;
    if crc32(payload) != crc {
        return Err(bad_data("snapshot checksum mismatch".into()));
    }
    VersionedStore::decode_state(payload).map_err(bad_data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::UncertainDataset;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A unique scratch directory under the workspace `target/` (never
    /// `/tmp`), cleaned by the caller.
    fn scratch_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/persist-tests")
            .join(format!(
                "{tag}-{}-{}",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::Relaxed)
            ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn seed_store() -> VersionedStore {
        let mut d = UncertainDataset::new(2);
        d.push_object(vec![(vec![2.0, 9.0], 0.4), (vec![12.0, 14.0], 0.4)]);
        d.push_object(vec![(vec![3.0, 4.0], 0.3), (vec![8.0, 3.0], 0.3)]);
        VersionedStore::from_dataset(&d)
    }

    fn batches() -> Vec<Vec<MutationOp>> {
        vec![
            vec![MutationOp::InsertInstance {
                object: 0,
                coords: vec![1.5, 1.5],
                prob: 0.1,
            }],
            vec![
                MutationOp::InsertObject {
                    label: Some("late".into()),
                    instances: vec![(vec![5.0, 5.0], 0.6)],
                },
                MutationOp::UpdateInstance {
                    handle: 4,
                    coords: vec![1.25, 1.75],
                    prob: 0.05,
                },
            ],
            vec![MutationOp::Merge],
            vec![
                MutationOp::RemoveInstance { handle: 4 },
                MutationOp::RetireObject { object: 1 },
            ],
        ]
    }

    #[test]
    fn ops_roundtrip_through_the_wire_format() {
        for batch in batches() {
            for op in batch {
                let mut encoded = Vec::new();
                op.encode_into(&mut encoded);
                let mut cursor = WalCursor {
                    bytes: &encoded,
                    at: 0,
                };
                let decoded = MutationOp::decode_from(&mut cursor).expect("decodes");
                assert_eq!(cursor.remaining(), 0);
                assert_eq!(decoded, op);
            }
        }
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The canonical CRC-32 check: crc32(b"123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn recovery_replays_the_wal_over_the_snapshot() {
        let dir = scratch_dir("replay");
        let mut durable = DurableStore::create(&dir, seed_store()).expect("create");
        for batch in batches() {
            durable.apply_batch(&batch).expect("apply");
        }
        let expected = durable.store().encode_state();
        drop(durable);

        let (recovered, report) = DurableStore::open(&dir).expect("open");
        assert_eq!(recovered.store().encode_state(), expected);
        assert_eq!(report.records_replayed, 4);
        assert_eq!(report.records_skipped, 0);
        assert_eq!(report.torn_bytes, 0);

        // Recovery is idempotent: open again, same state.
        drop(recovered);
        let (again, _) = DurableStore::open(&dir).expect("re-open");
        assert_eq!(again.store().encode_state(), expected);
        fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn checkpoint_truncates_the_wal_and_survives_reopen() {
        let dir = scratch_dir("checkpoint");
        let mut durable = DurableStore::create(&dir, seed_store()).expect("create");
        let all = batches();
        durable.apply_batch(&all[0]).expect("apply");
        durable.apply_batch(&all[1]).expect("apply");
        durable.checkpoint().expect("checkpoint");
        durable.apply_batch(&all[2]).expect("apply");
        let expected = durable.store().encode_state();
        drop(durable);

        let (recovered, report) = DurableStore::open(&dir).expect("open");
        assert_eq!(recovered.store().encode_state(), expected);
        assert_eq!(
            report.records_replayed, 1,
            "only the post-checkpoint batch replays"
        );
        fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn torn_tails_are_truncated_to_the_last_intact_record() {
        let dir = scratch_dir("torn");
        let mut durable = DurableStore::create(&dir, seed_store()).expect("create");
        let all = batches();
        durable.apply_batch(&all[0]).expect("apply");
        let expected = durable.store().encode_state();
        drop(durable);

        // Simulate a crash mid-append: append garbage that looks like a
        // half-written record.
        let wal = DurableStore::wal_path(&dir);
        let mut file = OpenOptions::new().append(true).open(&wal).expect("wal");
        file.write_all(&[200, 0, 0, 0, 1, 2, 3, 4, 9, 9])
            .expect("torn bytes");
        drop(file);

        let (recovered, report) = DurableStore::open(&dir).expect("open");
        assert_eq!(recovered.store().encode_state(), expected);
        assert_eq!(report.torn_bytes, 10);

        // The tail is physically gone: a further batch appends cleanly and
        // the next recovery sees no tear.
        let mut recovered = recovered;
        recovered.apply_batch(&all[1]).expect("apply after repair");
        let expected = recovered.store().encode_state();
        drop(recovered);
        let (fresh, report) = DurableStore::open(&dir).expect("re-open");
        assert_eq!(fresh.store().encode_state(), expected);
        assert_eq!(report.torn_bytes, 0);
        fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn a_failed_append_rolls_back_and_leaves_no_trace() {
        let dir = scratch_dir("rollback");
        let mut durable = DurableStore::create(&dir, seed_store()).expect("create");
        let all = batches();
        durable.apply_batch(&all[0]).expect("apply");
        let before = durable.store().encode_state();

        let _gate = failpoint::exclusive();
        failpoint::reset();
        failpoint::arm("wal.append.sync", failpoint::FailAction::Error);
        let err = durable.apply_batch(&all[1]).expect_err("injected failure");
        assert!(err.to_string().contains("wal.append.sync"));
        failpoint::reset();

        assert_eq!(
            durable.store().encode_state(),
            before,
            "the failed batch never touched the in-memory store"
        );
        // ...nor the durable state: recovery sees only the first batch.
        drop(durable);
        let (recovered, report) = DurableStore::open(&dir).expect("open");
        assert_eq!(recovered.store().encode_state(), before);
        assert_eq!(report.records_replayed, 1);
        assert_eq!(report.torn_bytes, 0);
        fs::remove_dir_all(&dir).expect("cleanup");
    }
}
