//! The uncertain data model of §II-B.
//!
//! An uncertain dataset `D = {T_1, …, T_m}` consists of `m` uncertain
//! objects; each object `T_i` is a discrete probability distribution over a
//! set of instances in `R^d` with `Σ_{t∈T_i} p(t) ≤ 1` (the remaining mass is
//! the probability that the object does not materialise at all). Objects are
//! mutually independent.

use arsp_geometry::Point;

/// A single instance of an uncertain object: a point plus its existence
/// probability.
#[derive(Clone, Debug, PartialEq)]
pub struct Instance {
    /// Globally unique instance identifier (dense, `0..n`).
    pub id: usize,
    /// Index of the owning uncertain object (dense, `0..m`).
    pub object: usize,
    /// Coordinates in `R^d` (lower is better).
    pub coords: Vec<f64>,
    /// Existence probability `p(t) ∈ (0, 1]`.
    pub prob: f64,
}

impl Instance {
    /// Dimensionality of the instance.
    pub fn dim(&self) -> usize {
        self.coords.len()
    }

    /// The instance as a geometric point.
    pub fn point(&self) -> Point {
        Point::from(self.coords.as_slice())
    }
}

/// Metadata of one uncertain object: which instances belong to it and its
/// total existence probability.
#[derive(Clone, Debug, PartialEq)]
pub struct UncertainObject {
    /// Index of the object (dense, `0..m`).
    pub id: usize,
    /// Optional human-readable label (player name, car model, …).
    pub label: Option<String>,
    /// Global instance ids belonging to this object.
    pub instance_ids: Vec<usize>,
    /// Sum of the existence probabilities of the object's instances.
    pub total_prob: f64,
}

impl UncertainObject {
    /// Number of instances of this object.
    pub fn num_instances(&self) -> usize {
        self.instance_ids.len()
    }

    /// Probability that the object does not materialise in a possible world.
    pub fn absence_prob(&self) -> f64 {
        (1.0 - self.total_prob).max(0.0)
    }
}

/// An uncertain dataset: a flat instance table plus per-object metadata.
#[derive(Clone, Debug, Default)]
pub struct UncertainDataset {
    dim: usize,
    instances: Vec<Instance>,
    objects: Vec<UncertainObject>,
}

impl UncertainDataset {
    /// Creates an empty dataset of the given dimensionality.
    pub fn new(dim: usize) -> Self {
        assert!(dim >= 1, "datasets must have at least one dimension");
        Self {
            dim,
            instances: Vec::new(),
            objects: Vec::new(),
        }
    }

    /// Adds an uncertain object given its instances as `(coords, prob)` pairs
    /// and returns the object id.
    ///
    /// # Panics
    /// Panics if an instance has the wrong dimensionality, a non-positive or
    /// greater-than-one probability, or if the total probability of the
    /// object exceeds one (beyond a small tolerance).
    pub fn push_object(&mut self, instances: Vec<(Vec<f64>, f64)>) -> usize {
        self.push_labeled_object(None, instances)
    }

    /// Adds an uncertain object with a human-readable label.
    pub fn push_labeled_object(
        &mut self,
        label: Option<String>,
        instances: Vec<(Vec<f64>, f64)>,
    ) -> usize {
        assert!(
            !instances.is_empty(),
            "objects must have at least one instance"
        );
        let object_id = self.objects.len();
        let mut instance_ids = Vec::with_capacity(instances.len());
        let mut total = 0.0;
        for (coords, prob) in instances {
            assert_eq!(coords.len(), self.dim, "instance dimensionality mismatch");
            assert!(
                prob > 0.0 && prob <= 1.0 + 1e-12,
                "instance probabilities must lie in (0, 1]"
            );
            total += prob;
            let id = self.instances.len();
            instance_ids.push(id);
            self.instances.push(Instance {
                id,
                object: object_id,
                coords,
                prob,
            });
        }
        assert!(
            total <= 1.0 + 1e-9,
            "total probability of an object must not exceed 1 (got {total})"
        );
        self.objects.push(UncertainObject {
            id: object_id,
            label,
            instance_ids,
            total_prob: total.min(1.0),
        });
        object_id
    }

    /// Dataset dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of uncertain objects `m`.
    pub fn num_objects(&self) -> usize {
        self.objects.len()
    }

    /// Number of instances `n = |I|`.
    pub fn num_instances(&self) -> usize {
        self.instances.len()
    }

    /// All instances in id order.
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// One instance by global id.
    pub fn instance(&self, id: usize) -> &Instance {
        &self.instances[id]
    }

    /// All objects in id order.
    pub fn objects(&self) -> &[UncertainObject] {
        &self.objects
    }

    /// One object by id.
    pub fn object(&self, id: usize) -> &UncertainObject {
        &self.objects[id]
    }

    /// Iterates over the instances of one object.
    pub fn object_instances(&self, object: usize) -> impl Iterator<Item = &Instance> + '_ {
        self.objects[object]
            .instance_ids
            .iter()
            .map(move |&id| &self.instances[id])
    }

    /// Number of objects whose total probability is strictly below one
    /// (the `ϕ·m` objects of the synthetic generator).
    pub fn num_partial_objects(&self) -> usize {
        self.objects
            .iter()
            .filter(|o| o.total_prob < 1.0 - 1e-12)
            .count()
    }

    /// The per-object average dataset (each object collapsed to the
    /// probability-weighted mean of its instances, normalised by its total
    /// probability). This is the "aggregated dataset" the paper compares
    /// against in the effectiveness study (§V-B).
    pub fn aggregate_by_mean(&self) -> CertainDataset {
        let mut agg = CertainDataset::new(self.dim);
        for obj in &self.objects {
            let mut mean = vec![0.0; self.dim];
            let mut mass = 0.0;
            for &iid in &obj.instance_ids {
                let inst = &self.instances[iid];
                for (m, c) in mean.iter_mut().zip(&inst.coords) {
                    *m += c * inst.prob;
                }
                mass += inst.prob;
            }
            for m in mean.iter_mut() {
                *m /= mass;
            }
            agg.push_labeled_point(obj.label.clone(), mean);
        }
        agg
    }

    /// Basic structural validation; returns a description of the first
    /// violation found, if any. Intended for test assertions and for
    /// validating externally constructed datasets.
    pub fn validate(&self) -> Result<(), String> {
        for inst in &self.instances {
            if inst.coords.len() != self.dim {
                return Err(format!("instance {} has wrong dimensionality", inst.id));
            }
            if !(inst.prob > 0.0 && inst.prob <= 1.0 + 1e-12) {
                return Err(format!("instance {} has invalid probability", inst.id));
            }
            if inst.coords.iter().any(|c| !c.is_finite()) {
                return Err(format!("instance {} has non-finite coordinates", inst.id));
            }
        }
        for obj in &self.objects {
            let total: f64 = obj
                .instance_ids
                .iter()
                .map(|&id| self.instances[id].prob)
                .sum();
            if total > 1.0 + 1e-6 {
                return Err(format!("object {} has total probability {total}", obj.id));
            }
            for &id in &obj.instance_ids {
                if self.instances[id].object != obj.id {
                    return Err(format!("instance {id} is mis-assigned"));
                }
            }
        }
        Ok(())
    }
}

/// A certain (deterministic) dataset: labelled points in `R^d`.
///
/// Used by the eclipse-query experiments (Fig. 8) and as the target of the
/// aggregated-rskyline comparison.
#[derive(Clone, Debug, Default)]
pub struct CertainDataset {
    dim: usize,
    points: Vec<Vec<f64>>,
    labels: Vec<Option<String>>,
}

impl CertainDataset {
    /// Creates an empty certain dataset.
    pub fn new(dim: usize) -> Self {
        assert!(dim >= 1);
        Self {
            dim,
            points: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// Adds a point and returns its id.
    pub fn push_point(&mut self, coords: Vec<f64>) -> usize {
        self.push_labeled_point(None, coords)
    }

    /// Adds a labelled point and returns its id.
    pub fn push_labeled_point(&mut self, label: Option<String>, coords: Vec<f64>) -> usize {
        assert_eq!(coords.len(), self.dim);
        self.points.push(coords);
        self.labels.push(label);
        self.points.len() - 1
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Coordinates of one point.
    pub fn point(&self, id: usize) -> &[f64] {
        &self.points[id]
    }

    /// Label of one point, if any.
    pub fn label(&self, id: usize) -> Option<&str> {
        self.labels[id].as_deref()
    }

    /// All points.
    pub fn points(&self) -> &[Vec<f64>] {
        &self.points
    }

    /// The skyline of the dataset (ids of points not coordinate-wise
    /// dominated by any *distinct* point). Ties: among coordinate-identical
    /// points the one with the smallest id is kept.
    pub fn skyline(&self) -> Vec<usize> {
        let mut result = Vec::new();
        'outer: for (i, p) in self.points.iter().enumerate() {
            for (j, q) in self.points.iter().enumerate() {
                if i == j {
                    continue;
                }
                let dominated = arsp_geometry::point::dominates(q, p);
                let equal = q == p;
                if dominated && (!equal || j < i) {
                    continue 'outer;
                }
            }
            result.push(i);
        }
        result
    }
}

/// The running example of the paper (Fig. 1 / Example 1): 4 objects and 10
/// instances in 2 dimensions.
///
/// The paper does not list the exact coordinates of Fig. 1; this fixture is
/// constructed so that, under `F = {ω1·x1 + ω2·x2 | 0.5·ω2 ≤ ω1 ≤ 2·ω2}`
/// (the constraint set of Example 1), the quantities the paper states hold
/// exactly:
///
/// * `Pr_rsky(t1,1) = 2/9` — exactly one instance of `T2` and one instance of
///   `T3` F-dominate `t1,1`, and no instance of `T4` does,
/// * `Pr_rsky(t1,2) = 0` — every instance of `T2` F-dominates `t1,2` and
///   `Σ_{t∈T2} p(t) = 1`,
/// * hence `Pr_rsky(T1) = 2/9`.
///
/// The fixture is exported so that unit tests, integration tests and the
/// quickstart example can all exercise the same tiny dataset.
pub fn paper_running_example() -> UncertainDataset {
    let mut d = UncertainDataset::new(2);
    // T1: two instances, p = 1/2 each.
    d.push_object(vec![(vec![2.0, 9.0], 0.5), (vec![12.0, 14.0], 0.5)]);
    // T2: three instances, p = 1/3 each.
    d.push_object(vec![
        (vec![3.0, 4.0], 1.0 / 3.0),
        (vec![8.0, 3.0], 1.0 / 3.0),
        (vec![9.0, 12.0], 1.0 / 3.0),
    ]);
    // T3: three instances, p = 1/3 each.
    d.push_object(vec![
        (vec![1.0, 8.0], 1.0 / 3.0),
        (vec![4.0, 14.0], 1.0 / 3.0),
        (vec![11.0, 8.0], 1.0 / 3.0),
    ]);
    // T4: two instances, p = 1/2 each.
    d.push_object(vec![(vec![7.0, 15.0], 0.5), (vec![13.0, 6.0], 0.5)]);
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn paper_example() -> UncertainDataset {
        paper_running_example()
    }

    #[test]
    fn build_and_accessors() {
        let d = paper_example();
        assert_eq!(d.dim(), 2);
        assert_eq!(d.num_objects(), 4);
        assert_eq!(d.num_instances(), 10);
        assert_eq!(d.object(1).num_instances(), 3);
        assert!((d.object(1).total_prob - 1.0).abs() < 1e-9);
        assert_eq!(d.object(1).absence_prob(), 0.0);
        assert_eq!(d.instance(2).object, 1);
        assert_eq!(d.object_instances(3).count(), 2);
        assert_eq!(d.num_partial_objects(), 0);
        assert!(d.validate().is_ok());
    }

    #[test]
    fn instance_ids_are_dense_and_consistent() {
        let d = paper_example();
        for (i, inst) in d.instances().iter().enumerate() {
            assert_eq!(inst.id, i);
            assert!(d.object(inst.object).instance_ids.contains(&i));
        }
    }

    #[test]
    fn partial_objects_counted() {
        let mut d = UncertainDataset::new(2);
        d.push_object(vec![(vec![0.0, 0.0], 0.4)]);
        d.push_object(vec![(vec![1.0, 1.0], 1.0)]);
        assert_eq!(d.num_partial_objects(), 1);
        assert!((d.object(0).absence_prob() - 0.6).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn rejects_overweight_objects() {
        let mut d = UncertainDataset::new(1);
        d.push_object(vec![(vec![0.0], 0.7), (vec![1.0], 0.7)]);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_probability() {
        let mut d = UncertainDataset::new(1);
        d.push_object(vec![(vec![0.0], 0.0)]);
    }

    #[test]
    #[should_panic]
    fn rejects_wrong_dimension() {
        let mut d = UncertainDataset::new(2);
        d.push_object(vec![(vec![0.0], 1.0)]);
    }

    #[test]
    fn aggregate_by_mean() {
        let mut d = UncertainDataset::new(2);
        d.push_labeled_object(
            Some("a".into()),
            vec![(vec![0.0, 2.0], 0.5), (vec![2.0, 0.0], 0.5)],
        );
        d.push_object(vec![(vec![4.0, 4.0], 0.8)]);
        let agg = d.aggregate_by_mean();
        assert_eq!(agg.len(), 2);
        assert_eq!(agg.point(0), &[1.0, 1.0]);
        assert_eq!(agg.point(1), &[4.0, 4.0]);
        assert_eq!(agg.label(0), Some("a"));
        assert_eq!(agg.label(1), None);
    }

    #[test]
    fn skyline_of_certain_dataset() {
        let mut c = CertainDataset::new(2);
        c.push_point(vec![1.0, 5.0]);
        c.push_point(vec![2.0, 2.0]);
        c.push_point(vec![5.0, 1.0]);
        c.push_point(vec![3.0, 3.0]); // dominated by (2,2)
        c.push_point(vec![2.0, 2.0]); // duplicate of id 1 -> only id 1 kept
        let sky = c.skyline();
        assert_eq!(sky, vec![0, 1, 2]);
    }

    #[test]
    fn empty_certain_dataset() {
        let c = CertainDataset::new(3);
        assert!(c.is_empty());
        assert!(c.skyline().is_empty());
    }
}
