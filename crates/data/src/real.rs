//! Simulated stand-ins for the paper's real datasets.
//!
//! The paper evaluates on three real datasets that are not redistributable
//! here (IIP iceberg sightings, a used-car listing corpus, and NBA game
//! logs). Following the substitution policy in DESIGN.md, this module builds
//! *synthetic datasets with the same schema and the same structural
//! properties the paper's analysis depends on*:
//!
//! * [`iip_like`] — 2 attributes, one instance per object, per-record
//!   confidence ∈ {0.8, 0.7, 0.6}; every object is partial (`Σp < 1`), which
//!   is the property that drives Fig. 6(a) and Fig. 7(b).
//! * [`car_like`] — 4 attributes, cars grouped into models with uniform
//!   instance probabilities and large intra-model variance (the property the
//!   paper calls out for Fig. 6(b)).
//! * [`nba_like`] — 8 per-game metrics, one object per player, one instance
//!   per game with `p = 1/|T|`; some players are consistently strong, others
//!   have high variance, which is what produces the Table I/II phenomenology.
//!
//! All generators are deterministic given their seed.

use crate::dataset::UncertainDataset;
use crate::synthetic::sample_normal;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Number of attributes of the NBA-like dataset (points, assists, steals,
/// blocks, turnovers, rebounds, minutes, field goals made).
pub const NBA_METRICS: usize = 8;

/// Builds an IIP-like dataset: `num_records` iceberg sightings with two
/// attributes (melting percentage, drifting days), one instance per object,
/// and confidence-derived probabilities in {0.8, 0.7, 0.6}.
///
/// Attributes are scaled to `[0, 1]` and mildly correlated (icebergs that
/// drifted longer tend to have melted more), with "lower is better"
/// orientation as everywhere else in the repository.
pub fn iip_like(num_records: usize, seed: u64) -> UncertainDataset {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut dataset = UncertainDataset::new(2);
    for _ in 0..num_records {
        let drift = rng.gen_range(0.0..1.0f64);
        let melt = (0.6 * drift + 0.4 * rng.gen_range(0.0..1.0)).clamp(0.0, 1.0);
        // Confidence levels R/V, VIS, RAD with the paper's probabilities.
        let prob = *[0.8, 0.7, 0.6].choose(&mut rng).expect("non-empty");
        dataset.push_object(vec![(vec![melt, drift], prob)]);
    }
    dataset
}

/// Builds a CAR-like dataset: `num_models` uncertain objects (car models),
/// each with a uniform distribution over its listed cars. Attributes are
/// price, power, mileage and registration age, scaled to `[0, 1]` with lower
/// preferred. Intra-model variance is deliberately large, matching the
/// paper's observation about the real CAR data.
pub fn car_like(num_models: usize, max_cars_per_model: usize, seed: u64) -> UncertainDataset {
    assert!(max_cars_per_model >= 1);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut dataset = UncertainDataset::new(4);
    for model in 0..num_models {
        // Model-level quality in each attribute.
        let base: Vec<f64> = (0..4).map(|_| rng.gen_range(0.1..0.9)).collect();
        let cars = rng.gen_range(1..=max_cars_per_model);
        let prob = 1.0 / cars as f64;
        let instances = (0..cars)
            .map(|_| {
                let coords = base
                    .iter()
                    .map(|&b| (b + sample_normal(&mut rng, 0.0, 0.18)).clamp(0.0, 1.0))
                    .collect();
                (coords, prob)
            })
            .collect();
        dataset.push_labeled_object(Some(format!("model-{model:04}")), instances);
    }
    dataset
}

/// Per-player archetypes used by [`nba_like`] to produce the mix of
/// consistent stars, high-variance stars and role players that drives the
/// paper's effectiveness discussion (§V-B).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PlayerArchetype {
    /// Strong averages, low game-to-game variance (the "Nikola Jokic" shape).
    ConsistentStar,
    /// Strong averages, high variance (the "Giannis" shape).
    VolatileStar,
    /// Good in one dimension only, high variance (the "Jonas Valanciunas"
    /// shape the paper contrasts against).
    Specialist,
    /// Ordinary performance.
    RolePlayer,
}

/// Builds an NBA-like dataset of `num_players` players with
/// `games_per_player` game records each, using `dims ≤ 8` of the standard
/// metrics. Returns the dataset; each object is labelled `player-XXXX` plus
/// its archetype so that effectiveness reports remain interpretable.
///
/// Metrics are oriented so that *lower is better* (i.e. they are stored as
/// `1 − normalised performance`), matching the convention of the rest of the
/// repository.
pub fn nba_like(
    num_players: usize,
    games_per_player: usize,
    dims: usize,
    seed: u64,
) -> UncertainDataset {
    assert!((1..=NBA_METRICS).contains(&dims));
    assert!(games_per_player >= 1);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut dataset = UncertainDataset::new(dims);
    for player in 0..num_players {
        let archetype = match rng.gen_range(0..10) {
            0 => PlayerArchetype::ConsistentStar,
            1 => PlayerArchetype::VolatileStar,
            2 | 3 => PlayerArchetype::Specialist,
            _ => PlayerArchetype::RolePlayer,
        };
        let (skill_lo, skill_hi, noise) = match archetype {
            PlayerArchetype::ConsistentStar => (0.65, 0.9, 0.06),
            PlayerArchetype::VolatileStar => (0.6, 0.9, 0.2),
            PlayerArchetype::Specialist => (0.2, 0.5, 0.22),
            PlayerArchetype::RolePlayer => (0.2, 0.55, 0.1),
        };
        // Per-metric skill level.
        let mut skill: Vec<f64> = (0..dims)
            .map(|_| rng.gen_range(skill_lo..skill_hi))
            .collect();
        if archetype == PlayerArchetype::Specialist {
            // One elite metric, the rest ordinary.
            let star_dim = rng.gen_range(0..dims);
            skill[star_dim] = rng.gen_range(0.75..0.95);
        }
        let games = games_per_player.max(1);
        let prob = 1.0 / games as f64;
        let instances = (0..games)
            .map(|_| {
                let coords = skill
                    .iter()
                    .map(|&s| {
                        let performance = (s + sample_normal(&mut rng, 0.0, noise)).clamp(0.0, 1.0);
                        1.0 - performance
                    })
                    .collect();
                (coords, prob)
            })
            .collect();
        let label = format!("player-{player:04} ({archetype:?})");
        dataset.push_labeled_object(Some(label), instances);
    }
    dataset
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iip_shape() {
        let d = iip_like(200, 3);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.num_objects(), 200);
        assert_eq!(d.num_instances(), 200);
        assert!(d.validate().is_ok());
        // Every object has a single instance with p < 1 (ϕ = 1 in the
        // paper's terminology).
        assert_eq!(d.num_partial_objects(), 200);
        for inst in d.instances() {
            assert!([0.8, 0.7, 0.6].contains(&inst.prob));
            assert!(inst.coords.iter().all(|&c| (0.0..=1.0).contains(&c)));
        }
    }

    #[test]
    fn car_shape() {
        let d = car_like(50, 12, 4);
        assert_eq!(d.dim(), 4);
        assert_eq!(d.num_objects(), 50);
        assert!(d.validate().is_ok());
        for obj in d.objects() {
            assert!((obj.total_prob - 1.0).abs() < 1e-9);
            let n = obj.num_instances();
            assert!((1..=12).contains(&n));
            let p = d.instance(obj.instance_ids[0]).prob;
            assert!((p - 1.0 / n as f64).abs() < 1e-12);
            assert!(obj.label.as_deref().unwrap().starts_with("model-"));
        }
    }

    #[test]
    fn nba_shape_and_determinism() {
        let a = nba_like(30, 20, 3, 9);
        let b = nba_like(30, 20, 3, 9);
        assert_eq!(a.num_instances(), 600);
        assert_eq!(a.dim(), 3);
        assert!(a.validate().is_ok());
        for (x, y) in a.instances().iter().zip(b.instances()) {
            assert_eq!(x.coords, y.coords);
        }
        for obj in a.objects() {
            assert_eq!(obj.num_instances(), 20);
            assert!((obj.total_prob - 1.0).abs() < 1e-9);
            assert!(obj.label.is_some());
        }
    }

    #[test]
    fn nba_has_varied_archetypes() {
        let d = nba_like(200, 5, 3, 123);
        let labels: Vec<&str> = d
            .objects()
            .iter()
            .filter_map(|o| o.label.as_deref())
            .collect();
        let has = |needle: &str| labels.iter().any(|l| l.contains(needle));
        assert!(has("ConsistentStar"));
        assert!(has("VolatileStar"));
        assert!(has("Specialist"));
        assert!(has("RolePlayer"));
    }

    #[test]
    #[should_panic]
    fn nba_rejects_too_many_dims() {
        let _ = nba_like(5, 5, 9, 1);
    }
}
