//! The preference region `Ω = {ω ∈ S^{d−1} | A·ω ≤ b}`.
//!
//! The paper restricts the scoring functions to linear functions
//! `S_ω(t) = Σ_i ω[i]·t[i]` whose weight vector lies on the unit
//! `(d−1)`-simplex and additionally satisfies user-supplied linear
//! constraints. Two concrete constraint families are used throughout the
//! evaluation:
//!
//! * **WR (weak ranking)** — `ω[i] ≥ ω[i+1]` for `1 ≤ i ≤ c`,
//! * **weight ratio constraints** — `l_i ≤ ω[i]/ω[d] ≤ h_i` for `i < d`
//!   (§IV; the "eclipse" preference of Liu et al.).
//!
//! This module holds the constraint representations; vertex enumeration lives
//! in [`crate::polytope`] and the dominance tests in [`crate::fdom`].

use crate::lp::{LinearProgram, LpOutcome};
use crate::EPS;

/// A single linear constraint `a·ω ≤ b` over the weight space.
#[derive(Clone, Debug, PartialEq)]
pub struct LinearConstraint {
    /// Coefficients `a` (length `d`).
    pub coeffs: Vec<f64>,
    /// Right-hand side `b`.
    pub rhs: f64,
}

impl LinearConstraint {
    /// Creates a constraint `coeffs · ω ≤ rhs`.
    pub fn new(coeffs: Vec<f64>, rhs: f64) -> Self {
        Self { coeffs, rhs }
    }

    /// Evaluates `a·ω − b`; non-positive values satisfy the constraint.
    pub fn slack(&self, omega: &[f64]) -> f64 {
        debug_assert_eq!(self.coeffs.len(), omega.len());
        self.coeffs
            .iter()
            .zip(omega)
            .map(|(a, w)| a * w)
            .sum::<f64>()
            - self.rhs
    }

    /// Returns `true` when `ω` satisfies the constraint up to [`EPS`].
    pub fn satisfied_by(&self, omega: &[f64]) -> bool {
        self.slack(omega) <= EPS
    }
}

/// Weight ratio constraints `R = Π_{i<d} [l_i, h_i]` with respect to the
/// reference dimension `d` (the last dimension), i.e.
/// `l_i ≤ ω[i]/ω[d] ≤ h_i` and `ω[d] > 0`.
#[derive(Clone, Debug, PartialEq)]
pub struct WeightRatio {
    ranges: Vec<(f64, f64)>,
}

impl WeightRatio {
    /// Creates weight ratio constraints from per-dimension ranges
    /// (`d − 1` entries, one for every non-reference dimension).
    ///
    /// # Panics
    /// Panics if any range is empty or has a negative lower bound.
    pub fn new(ranges: Vec<(f64, f64)>) -> Self {
        for &(l, h) in &ranges {
            assert!(l >= 0.0, "weight ratio lower bound must be non-negative");
            assert!(l <= h, "weight ratio range must be non-empty");
        }
        Self { ranges }
    }

    /// Creates the same range `[l, h]` for every non-reference dimension of a
    /// `d`-dimensional dataset.
    pub fn uniform(dim: usize, l: f64, h: f64) -> Self {
        assert!(
            dim >= 2,
            "weight ratio constraints need at least 2 dimensions"
        );
        Self::new(vec![(l, h); dim - 1])
    }

    /// Dataset dimensionality `d` (number of ranges + 1).
    pub fn dim(&self) -> usize {
        self.ranges.len() + 1
    }

    /// The per-dimension ranges `[l_i, h_i]`.
    pub fn ranges(&self) -> &[(f64, f64)] {
        &self.ranges
    }

    /// The `k`-th vertex of the ratio hyper-rectangle in lexicographic order
    /// (the `k-vertex` of §IV-B): bit `i` of `k` selects `h_i` over `l_i`.
    ///
    /// # Panics
    /// Panics if `k ≥ 2^{d−1}`.
    pub fn vertex(&self, k: usize) -> Vec<f64> {
        assert!(k < 1 << self.ranges.len());
        self.ranges
            .iter()
            .enumerate()
            .map(|(i, &(l, h))| if (k >> i) & 1 == 1 { h } else { l })
            .collect()
    }

    /// Number of vertices of the ratio hyper-rectangle, `2^{d−1}`.
    pub fn num_vertices(&self) -> usize {
        1 << self.ranges.len()
    }

    /// Expresses the weight ratio constraints as linear constraints on the
    /// simplex: `ω[i] − h_i·ω[d] ≤ 0` and `l_i·ω[d] − ω[i] ≤ 0`.
    ///
    /// Together with the simplex this describes exactly the preference region
    /// of §IV (the open condition `ω[d] > 0` is implied whenever some
    /// `h_i < ∞`, which is always the case here).
    pub fn to_constraint_set(&self) -> ConstraintSet {
        let d = self.dim();
        let mut cs = ConstraintSet::new(d);
        for (i, &(l, h)) in self.ranges.iter().enumerate() {
            let mut upper = vec![0.0; d];
            upper[i] = 1.0;
            upper[d - 1] = -h;
            cs.push(LinearConstraint::new(upper, 0.0));
            let mut lower = vec![0.0; d];
            lower[i] = -1.0;
            lower[d - 1] = l;
            cs.push(LinearConstraint::new(lower, 0.0));
        }
        cs
    }
}

/// A set of linear constraints on the weight simplex: the preference region
/// `Ω = {ω | ω ≥ 0, Σω = 1, A·ω ≤ b}`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ConstraintSet {
    dim: usize,
    constraints: Vec<LinearConstraint>,
}

impl ConstraintSet {
    /// Creates an empty constraint set over `dim` weights (the preference
    /// region is then the whole simplex).
    pub fn new(dim: usize) -> Self {
        assert!(dim >= 1);
        Self {
            dim,
            constraints: Vec::new(),
        }
    }

    /// Weak-ranking (WR) constraints: `ω[i] ≥ ω[i+1]` for `0 ≤ i < c`.
    ///
    /// This is the default constraint generator of the paper's evaluation
    /// (`c = d − 1` unless stated otherwise). With `c = d − 1` the preference
    /// region has exactly `d` vertices
    /// `(1,0,…), (1/2,1/2,0,…), …, (1/d,…,1/d)`.
    pub fn weak_ranking(dim: usize, c: usize) -> Self {
        assert!(c < dim, "weak ranking needs c < d constraints");
        let mut cs = Self::new(dim);
        for i in 0..c {
            // ω[i+1] − ω[i] ≤ 0
            let mut coeffs = vec![0.0; dim];
            coeffs[i] = -1.0;
            coeffs[i + 1] = 1.0;
            cs.push(LinearConstraint::new(coeffs, 0.0));
        }
        cs
    }

    /// Adds a constraint.
    pub fn push(&mut self, c: LinearConstraint) {
        assert_eq!(c.coeffs.len(), self.dim);
        self.constraints.push(c);
    }

    /// Dimensionality `d` of the weight space.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The user-supplied constraints (excluding simplex membership).
    pub fn constraints(&self) -> &[LinearConstraint] {
        &self.constraints
    }

    /// Number of user-supplied constraints `c`.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// `true` when no user constraint has been added.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Membership test: `ω ∈ Ω` (simplex + constraints) up to [`EPS`].
    pub fn contains(&self, omega: &[f64]) -> bool {
        if omega.len() != self.dim {
            return false;
        }
        if omega.iter().any(|&w| w < -EPS) {
            return false;
        }
        if (omega.iter().sum::<f64>() - 1.0).abs() > 1e-6 {
            return false;
        }
        self.constraints.iter().all(|c| c.satisfied_by(omega))
    }

    /// Returns `true` when the preference region is non-empty.
    pub fn is_feasible(&self) -> bool {
        self.feasible_point().is_some()
    }

    /// Finds some point of the preference region via the LP solver, or `None`
    /// when the region is empty.
    pub fn feasible_point(&self) -> Option<Vec<f64>> {
        let mut lp = LinearProgram::new(self.dim).minimize(vec![0.0; self.dim]);
        lp = lp.with_eq(vec![1.0; self.dim], 1.0);
        for c in &self.constraints {
            lp = lp.with_leq(c.coeffs.clone(), c.rhs);
        }
        match lp.solve() {
            LpOutcome::Optimal { x, .. } => Some(x),
            _ => None,
        }
    }

    /// Minimises a linear objective `c·ω` over the preference region.
    ///
    /// Used by the LP-based reference F-dominance test (problem (4) of the
    /// paper) and by tests.
    pub fn minimize_over_region(&self, objective: &[f64]) -> LpOutcome {
        assert_eq!(objective.len(), self.dim);
        let mut lp = LinearProgram::new(self.dim).minimize(objective.to_vec());
        lp = lp.with_eq(vec![1.0; self.dim], 1.0);
        for c in &self.constraints {
            lp = lp.with_leq(c.coeffs.clone(), c.rhs);
        }
        lp.solve()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_constraint_slack_and_satisfaction() {
        let c = LinearConstraint::new(vec![1.0, -1.0], 0.0);
        assert!(c.satisfied_by(&[0.3, 0.7]));
        assert!(!c.satisfied_by(&[0.7, 0.3]));
        assert!((c.slack(&[0.7, 0.3]) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn weak_ranking_membership() {
        let cs = ConstraintSet::weak_ranking(3, 2);
        assert_eq!(cs.len(), 2);
        assert!(cs.contains(&[0.5, 0.3, 0.2]));
        assert!(cs.contains(&[1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0]));
        assert!(!cs.contains(&[0.2, 0.3, 0.5]));
        // Not on the simplex.
        assert!(!cs.contains(&[0.5, 0.3, 0.3]));
        // Wrong dimensionality.
        assert!(!cs.contains(&[0.5, 0.5]));
    }

    #[test]
    fn empty_constraint_set_is_simplex() {
        let cs = ConstraintSet::new(2);
        assert!(cs.is_empty());
        assert!(cs.contains(&[0.25, 0.75]));
        assert!(!cs.contains(&[-0.25, 1.25]));
        assert!(cs.is_feasible());
    }

    #[test]
    fn infeasible_region_detected() {
        // ω[0] ≤ -1 cannot hold on the simplex.
        let mut cs = ConstraintSet::new(2);
        cs.push(LinearConstraint::new(vec![1.0, 0.0], -1.0));
        assert!(!cs.is_feasible());
        assert!(cs.feasible_point().is_none());
    }

    #[test]
    fn feasible_point_satisfies_constraints() {
        let cs = ConstraintSet::weak_ranking(4, 3);
        let p = cs.feasible_point().expect("region is non-empty");
        assert!(cs.contains(&p));
    }

    #[test]
    fn minimize_over_region_matches_vertex() {
        // minimise ω[2] over WR(3, 2): optimum 0 at e.g. (1,0,0).
        let cs = ConstraintSet::weak_ranking(3, 2);
        let out = cs.minimize_over_region(&[0.0, 0.0, 1.0]);
        assert!(out.objective().unwrap().abs() < 1e-9);
        // maximise ω[2]  == minimise −ω[2]: optimum −1/3 at the barycentre.
        let out = cs.minimize_over_region(&[0.0, 0.0, -1.0]);
        assert!((out.objective().unwrap() + 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn weight_ratio_vertices_and_dim() {
        let wr = WeightRatio::new(vec![(0.5, 2.0), (0.25, 4.0)]);
        assert_eq!(wr.dim(), 3);
        assert_eq!(wr.num_vertices(), 4);
        assert_eq!(wr.vertex(0), vec![0.5, 0.25]);
        assert_eq!(wr.vertex(1), vec![2.0, 0.25]);
        assert_eq!(wr.vertex(2), vec![0.5, 4.0]);
        assert_eq!(wr.vertex(3), vec![2.0, 4.0]);
    }

    #[test]
    fn weight_ratio_uniform() {
        let wr = WeightRatio::uniform(3, 0.5, 2.0);
        assert_eq!(wr.ranges(), &[(0.5, 2.0), (0.5, 2.0)]);
    }

    #[test]
    #[should_panic]
    fn weight_ratio_rejects_empty_range() {
        let _ = WeightRatio::new(vec![(2.0, 0.5)]);
    }

    #[test]
    fn weight_ratio_to_constraints_membership() {
        // d = 2, ratio in [0.5, 2]: ω = (x, 1−x) with 0.5 ≤ x/(1−x) ≤ 2,
        // i.e. x ∈ [1/3, 2/3].
        let wr = WeightRatio::uniform(2, 0.5, 2.0);
        let cs = wr.to_constraint_set();
        assert!(cs.contains(&[0.5, 0.5]));
        assert!(cs.contains(&[1.0 / 3.0, 2.0 / 3.0]));
        assert!(cs.contains(&[2.0 / 3.0, 1.0 / 3.0]));
        assert!(!cs.contains(&[0.9, 0.1]));
        assert!(!cs.contains(&[0.1, 0.9]));
    }
}
