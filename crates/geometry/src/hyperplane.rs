//! Hyperplanes, half-space side tests and the point/hyperplane duality of
//! §IV-A.
//!
//! A hyperplane is stored in the explicit form
//! `x[d] = Σ_{i<d} coeffs[i]·x[i] + offset` (the last coordinate expressed as
//! an affine function of the others), which is exactly the form in which the
//! paper writes both the region hyperplanes `h_{t,k}` (equation 6) and the
//! dual hyperplanes `p*`.

use crate::EPS;

/// Side of a point relative to a hyperplane, comparing the point's last
/// coordinate against the hyperplane value at the point's first `d−1`
/// coordinates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HalfSpaceSide {
    /// The point's last coordinate is larger (the point lies above).
    Above,
    /// The point lies on the hyperplane (within [`EPS`]).
    On,
    /// The point's last coordinate is smaller (the point lies below).
    Below,
}

impl HalfSpaceSide {
    /// `true` for `Below` or `On` — the closed lower half-space used by the
    /// half-space reporting reduction ("lying below or on").
    pub fn is_below_or_on(self) -> bool {
        matches!(self, HalfSpaceSide::Below | HalfSpaceSide::On)
    }

    /// `true` for `Above` or `On` — the closed upper half-space used by the
    /// dual query ("lying above or through").
    pub fn is_above_or_on(self) -> bool {
        matches!(self, HalfSpaceSide::Above | HalfSpaceSide::On)
    }
}

/// A non-vertical hyperplane `x[d] = Σ_{i<d} coeffs[i]·x[i] + offset` in `R^d`.
#[derive(Clone, Debug, PartialEq)]
pub struct Hyperplane {
    coeffs: Vec<f64>,
    offset: f64,
}

impl Hyperplane {
    /// Creates the hyperplane `x[d] = coeffs·x[1..d] + offset` where `coeffs`
    /// has length `d − 1`.
    pub fn new(coeffs: Vec<f64>, offset: f64) -> Self {
        Self { coeffs, offset }
    }

    /// Dimensionality `d` of the ambient space.
    pub fn dim(&self) -> usize {
        self.coeffs.len() + 1
    }

    /// Slope coefficients (length `d − 1`).
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Constant offset.
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// Value of the hyperplane at the first `d − 1` coordinates of a point.
    pub fn value_at(&self, coords: &[f64]) -> f64 {
        debug_assert!(coords.len() + 1 >= self.dim());
        self.coeffs
            .iter()
            .zip(coords)
            .map(|(a, x)| a * x)
            .sum::<f64>()
            + self.offset
    }

    /// Classifies a `d`-dimensional point against the hyperplane.
    pub fn side(&self, point: &[f64]) -> HalfSpaceSide {
        debug_assert_eq!(point.len(), self.dim());
        let expected = self.value_at(&point[..self.dim() - 1]);
        let actual = point[self.dim() - 1];
        if (actual - expected).abs() <= EPS {
            HalfSpaceSide::On
        } else if actual > expected {
            HalfSpaceSide::Above
        } else {
            HalfSpaceSide::Below
        }
    }

    /// Returns `true` when the point lies below or on the hyperplane.
    pub fn below_or_on(&self, point: &[f64]) -> bool {
        self.side(point).is_below_or_on()
    }

    /// The duality transform of §IV-A applied to a *point*
    /// `p = (p[1], …, p[d])`, producing the hyperplane
    /// `p* : x[d] = p[1]·x[1] + … + p[d−1]·x[d−1] − p[d]`.
    pub fn dual_of_point(point: &[f64]) -> Hyperplane {
        let d = point.len();
        assert!(d >= 2, "duality needs at least two dimensions");
        Hyperplane::new(point[..d - 1].to_vec(), -point[d - 1])
    }

    /// The duality transform applied to this *hyperplane*
    /// `h : x[d] = α[1]·x[1] + … + α[d−1]·x[d−1] − α[d]`, producing the point
    /// `h* = (α[1], …, α[d])`.
    pub fn dual_point(&self) -> Vec<f64> {
        let mut p = self.coeffs.clone();
        p.push(-self.offset);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn value_and_side() {
        // x2 = -0.5*x1 + 16.5  (the hyperplane h_{t23,0} of the paper's Example 3).
        let h = Hyperplane::new(vec![-0.5], 16.5);
        assert_eq!(h.dim(), 2);
        assert_eq!(h.value_at(&[9.0]), 12.0);
        // t3,1 = (6, 12): below or on?  value_at(6) = 13.5 > 12 → below.
        assert_eq!(h.side(&[6.0, 12.0]), HalfSpaceSide::Below);
        assert!(h.below_or_on(&[6.0, 12.0]));
        // A point above.
        assert_eq!(h.side(&[6.0, 20.0]), HalfSpaceSide::Above);
        // A point exactly on the hyperplane.
        assert_eq!(h.side(&[9.0, 12.0]), HalfSpaceSide::On);
        assert!(h.side(&[9.0, 12.0]).is_above_or_on());
    }

    #[test]
    fn paper_example_3_region_one() {
        // h_{t23,1}: x2 = -2*x1 + 30; t3,3 = (11, 8) lies on it.
        let h = Hyperplane::new(vec![-2.0], 30.0);
        assert_eq!(h.side(&[11.0, 8.0]), HalfSpaceSide::On);
    }

    #[test]
    fn duality_round_trip() {
        let p = vec![1.5, -2.0, 3.0];
        let h = Hyperplane::dual_of_point(&p);
        assert_eq!(h.coeffs(), &[1.5, -2.0]);
        assert_eq!(h.offset(), -3.0);
        assert_eq!(h.dual_point(), p);
    }

    #[test]
    fn side_enum_helpers() {
        assert!(HalfSpaceSide::Below.is_below_or_on());
        assert!(HalfSpaceSide::On.is_below_or_on());
        assert!(!HalfSpaceSide::Above.is_below_or_on());
        assert!(HalfSpaceSide::Above.is_above_or_on());
        assert!(!HalfSpaceSide::Below.is_above_or_on());
    }

    proptest! {
        /// The defining property of the duality: p lies above (below, on) h
        /// iff h* lies above (below, on) p*.
        #[test]
        fn duality_preserves_sides(
            p in proptest::collection::vec(-10.0f64..10.0, 3),
            coeffs in proptest::collection::vec(-5.0f64..5.0, 2),
            offset in -10.0f64..10.0,
        ) {
            let h = Hyperplane::new(coeffs, offset);
            let p_dual = Hyperplane::dual_of_point(&p);
            let h_dual = h.dual_point();
            let side_primal = h.side(&p);
            let side_dual = p_dual.side(&h_dual);
            // Allow the On/≈ boundary to disagree only when both are within a
            // small neighbourhood of the hyperplane.
            if side_primal != HalfSpaceSide::On && side_dual != HalfSpaceSide::On {
                prop_assert_eq!(side_primal, side_dual);
            }
        }
    }
}
