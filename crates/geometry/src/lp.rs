//! A small dense two-phase simplex solver.
//!
//! The ARSP algorithms only need linear programs of tiny size:
//!
//! * the LP-based *reference* F-dominance test minimises
//!   `Σ_i (s[i] − t[i])·ω[i]` over the preference region (problem (4) of the
//!   paper) with `d ≤ 8` variables and a handful of constraints,
//! * the preference-region machinery needs feasibility checks and an interior
//!   point for the IM constraint generator.
//!
//! The solver therefore favours clarity and robustness (Bland's rule, explicit
//! two-phase handling of equality constraints) over performance; the
//! production F-dominance tests used inside the algorithms are the
//! vertex-based test of Theorem 2 and the `O(d)` weight-ratio test of
//! Theorem 5, not this LP.

use crate::EPS;

/// Outcome of an LP solve.
#[derive(Clone, Debug, PartialEq)]
pub enum LpOutcome {
    /// An optimal solution was found: objective value and primal solution.
    Optimal { objective: f64, x: Vec<f64> },
    /// The constraint system has no feasible point.
    Infeasible,
    /// The objective is unbounded below over the feasible region.
    Unbounded,
}

impl LpOutcome {
    /// Convenience accessor: the optimal objective value, if any.
    pub fn objective(&self) -> Option<f64> {
        match self {
            LpOutcome::Optimal { objective, .. } => Some(*objective),
            _ => None,
        }
    }

    /// Convenience accessor: the optimal solution, if any.
    pub fn solution(&self) -> Option<&[f64]> {
        match self {
            LpOutcome::Optimal { x, .. } => Some(x),
            _ => None,
        }
    }

    /// Returns `true` when the LP was solved to optimality.
    pub fn is_optimal(&self) -> bool {
        matches!(self, LpOutcome::Optimal { .. })
    }
}

/// A linear program in the form
///
/// ```text
/// minimise   c·x
/// subject to A_ub · x ≤ b_ub
///            A_eq · x = b_eq
///            x ≥ 0
/// ```
#[derive(Clone, Debug, Default)]
pub struct LinearProgram {
    /// Objective coefficients `c` (length = number of variables).
    pub objective: Vec<f64>,
    /// Inequality rows (`A_ub`, `b_ub`).
    pub leq: Vec<(Vec<f64>, f64)>,
    /// Equality rows (`A_eq`, `b_eq`).
    pub eq: Vec<(Vec<f64>, f64)>,
}

impl LinearProgram {
    /// Creates an empty LP over `n` non-negative variables with a zero
    /// objective.
    pub fn new(n: usize) -> Self {
        Self {
            objective: vec![0.0; n],
            leq: Vec::new(),
            eq: Vec::new(),
        }
    }

    /// Sets the objective coefficients.
    pub fn minimize(mut self, c: Vec<f64>) -> Self {
        assert_eq!(c.len(), self.objective.len());
        self.objective = c;
        self
    }

    /// Adds an inequality `a·x ≤ b`.
    pub fn with_leq(mut self, a: Vec<f64>, b: f64) -> Self {
        assert_eq!(a.len(), self.objective.len());
        self.leq.push((a, b));
        self
    }

    /// Adds an equality `a·x = b`.
    pub fn with_eq(mut self, a: Vec<f64>, b: f64) -> Self {
        assert_eq!(a.len(), self.objective.len());
        self.eq.push((a, b));
        self
    }

    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Solves the LP with the two-phase simplex method.
    pub fn solve(&self) -> LpOutcome {
        Simplex::new(self).solve()
    }
}

/// Internal dense tableau simplex.
struct Simplex {
    /// Tableau rows: one per constraint, each of length `num_cols + 1`
    /// (the last entry is the right-hand side).
    rows: Vec<Vec<f64>>,
    /// Index of the basic variable for each row.
    basis: Vec<usize>,
    /// Number of structural (original) variables.
    n: usize,
    /// Number of structural + slack variables (artificials come after).
    n_with_slack: usize,
    /// Total number of columns (structural + slack + artificial).
    num_cols: usize,
    /// Original objective, padded to `num_cols`.
    objective: Vec<f64>,
}

impl Simplex {
    fn new(lp: &LinearProgram) -> Self {
        let n = lp.num_vars();
        let m_leq = lp.leq.len();
        let m = m_leq + lp.eq.len();
        let n_with_slack = n + m_leq;
        // One artificial variable per row keeps the construction simple and
        // uniform; the sizes involved are tiny.
        let num_cols = n_with_slack + m;

        let mut rows = Vec::with_capacity(m);
        let mut basis = Vec::with_capacity(m);

        for (ri, (a, b)) in lp.leq.iter().chain(lp.eq.iter()).enumerate() {
            let is_leq = ri < m_leq;
            let mut row = vec![0.0; num_cols + 1];
            row[..n].copy_from_slice(a);
            if is_leq {
                row[n + ri] = 1.0; // slack
            }
            row[num_cols] = *b;
            // Normalise to a non-negative right-hand side.
            if row[num_cols] < 0.0 {
                for v in row.iter_mut() {
                    *v = -*v;
                }
            }
            // Artificial variable for this row.
            row[n_with_slack + ri] = 1.0;
            basis.push(n_with_slack + ri);
            rows.push(row);
        }

        let mut objective = lp.objective.clone();
        objective.resize(num_cols, 0.0);

        Self {
            rows,
            basis,
            n,
            n_with_slack,
            num_cols,
            objective,
        }
    }

    fn solve(mut self) -> LpOutcome {
        // Phase 1: minimise the sum of artificial variables.
        let mut phase1 = vec![0.0; self.num_cols];
        for v in phase1[self.n_with_slack..].iter_mut() {
            *v = 1.0;
        }
        match self.optimize(&phase1, /* forbid_artificials = */ false) {
            PivotResult::Optimal(value) => {
                if value > 1e-7 {
                    return LpOutcome::Infeasible;
                }
            }
            PivotResult::Unbounded => {
                // Phase 1 objective is bounded below by zero; this cannot
                // happen for well-formed input.
                return LpOutcome::Infeasible;
            }
        }
        self.drive_out_artificials();

        // Phase 2: minimise the real objective, never letting an artificial
        // variable re-enter the basis.
        let objective = self.objective.clone();
        match self.optimize(&objective, /* forbid_artificials = */ true) {
            PivotResult::Optimal(value) => LpOutcome::Optimal {
                objective: value,
                x: self.extract_solution(),
            },
            PivotResult::Unbounded => LpOutcome::Unbounded,
        }
    }

    /// Runs simplex pivots minimising `cost` until optimality or
    /// unboundedness, using Bland's rule for anti-cycling.
    fn optimize(&mut self, cost: &[f64], forbid_artificials: bool) -> PivotResult {
        let limit_col = if forbid_artificials {
            self.n_with_slack
        } else {
            self.num_cols
        };
        // Reduced cost row, kept consistent with the current basis.
        let mut z = cost.to_vec();
        let mut z_rhs = 0.0;
        for (r, &bi) in self.basis.iter().enumerate() {
            let coeff = z[bi];
            if coeff != 0.0 {
                for (zc, rc) in z.iter_mut().zip(&self.rows[r][..self.num_cols]) {
                    *zc -= coeff * rc;
                }
                z_rhs -= coeff * self.rows[r][self.num_cols];
            }
        }

        // A very generous iteration cap guards against numerical livelock.
        let max_iter = 200 * (self.num_cols + self.rows.len() + 1);
        for _ in 0..max_iter {
            // Bland's rule: the entering variable is the lowest-index column
            // with a negative reduced cost.
            let entering = (0..limit_col).find(|&c| z[c] < -1e-9);
            let entering = match entering {
                Some(c) => c,
                None => return PivotResult::Optimal(-z_rhs),
            };

            // Ratio test; Bland's rule again breaks ties by basic-variable
            // index.
            let mut leaving: Option<(usize, f64)> = None;
            for r in 0..self.rows.len() {
                let coeff = self.rows[r][entering];
                if coeff > 1e-9 {
                    let ratio = self.rows[r][self.num_cols] / coeff;
                    match leaving {
                        None => leaving = Some((r, ratio)),
                        Some((lr, lratio)) => {
                            if ratio < lratio - 1e-12
                                || ((ratio - lratio).abs() <= 1e-12
                                    && self.basis[r] < self.basis[lr])
                            {
                                leaving = Some((r, ratio));
                            }
                        }
                    }
                }
            }
            let (leave_row, _) = match leaving {
                Some(l) => l,
                None => return PivotResult::Unbounded,
            };

            self.pivot(leave_row, entering);
            // Update the reduced-cost row for the pivot.
            let coeff = z[entering];
            if coeff != 0.0 {
                for (zc, rc) in z.iter_mut().zip(&self.rows[leave_row][..self.num_cols]) {
                    *zc -= coeff * rc;
                }
                z_rhs -= coeff * self.rows[leave_row][self.num_cols];
            }
        }
        // Falling out of the loop means we hit the iteration cap; report the
        // current (feasible) value as optimal — with Bland's rule this is not
        // expected to happen for the problem sizes in this crate.
        PivotResult::Optimal(-z_rhs)
    }

    /// Performs a pivot: the variable `entering` becomes basic in `row`.
    fn pivot(&mut self, row: usize, entering: usize) {
        let pivot = self.rows[row][entering];
        debug_assert!(pivot.abs() > 1e-12);
        for v in self.rows[row].iter_mut() {
            *v /= pivot;
        }
        for r in 0..self.rows.len() {
            if r == row {
                continue;
            }
            let factor = self.rows[r][entering];
            if factor != 0.0 {
                for c in 0..=self.num_cols {
                    self.rows[r][c] -= factor * self.rows[row][c];
                }
            }
        }
        self.basis[row] = entering;
    }

    /// After phase 1, pivots any artificial variable that is still basic out
    /// of the basis (or detects that its row is redundant).
    fn drive_out_artificials(&mut self) {
        for r in 0..self.rows.len() {
            if self.basis[r] >= self.n_with_slack {
                // Find a non-artificial column with a non-zero coefficient.
                if let Some(c) = (0..self.n_with_slack).find(|&c| self.rows[r][c].abs() > EPS) {
                    self.pivot(r, c);
                }
                // Otherwise the row is all zeros over structural variables —
                // a redundant constraint — and can stay as is: the artificial
                // is basic at value zero and phase 2 forbids it from moving.
            }
        }
    }

    fn extract_solution(&self) -> Vec<f64> {
        let mut x = vec![0.0; self.n];
        for (r, &bi) in self.basis.iter().enumerate() {
            if bi < self.n {
                x[bi] = self.rows[r][self.num_cols];
            }
        }
        x
    }
}

enum PivotResult {
    Optimal(f64),
    Unbounded,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_bounded_minimum() {
        // minimise -x - y  s.t. x + y <= 1, x,y >= 0 ; optimum -1 on the segment.
        let lp = LinearProgram::new(2)
            .minimize(vec![-1.0, -1.0])
            .with_leq(vec![1.0, 1.0], 1.0);
        let out = lp.solve();
        let obj = out.objective().expect("optimal");
        assert!((obj + 1.0).abs() < 1e-9);
        let x = out.solution().unwrap();
        assert!((x[0] + x[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn equality_constraints() {
        // minimise x1 + 2*x2 s.t. x1 + x2 = 1 ; optimum at x = (1, 0).
        let lp = LinearProgram::new(2)
            .minimize(vec![1.0, 2.0])
            .with_eq(vec![1.0, 1.0], 1.0);
        let out = lp.solve();
        assert!((out.objective().unwrap() - 1.0).abs() < 1e-9);
        let x = out.solution().unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert!(x[1].abs() < 1e-9);
    }

    #[test]
    fn infeasible_detected() {
        // x <= -1 with x >= 0 is infeasible.
        let lp = LinearProgram::new(1)
            .minimize(vec![1.0])
            .with_leq(vec![1.0], -1.0);
        assert_eq!(lp.solve(), LpOutcome::Infeasible);
    }

    #[test]
    fn contradictory_equalities_are_infeasible() {
        let lp = LinearProgram::new(2)
            .minimize(vec![0.0, 0.0])
            .with_eq(vec![1.0, 1.0], 1.0)
            .with_eq(vec![1.0, 1.0], 2.0);
        assert_eq!(lp.solve(), LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // minimise -x with only x >= 0 is unbounded below.
        let lp = LinearProgram::new(1).minimize(vec![-1.0]);
        assert_eq!(lp.solve(), LpOutcome::Unbounded);
    }

    #[test]
    fn negative_rhs_handled() {
        // minimise x s.t. -x <= -2  (i.e. x >= 2); optimum 2.
        let lp = LinearProgram::new(1)
            .minimize(vec![1.0])
            .with_leq(vec![-1.0], -2.0);
        let out = lp.solve();
        assert!((out.objective().unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn simplex_vertex_objective() {
        // minimise the first coordinate over the 2-simplex with an extra
        // ordering constraint w1 >= w2: the optimum is w = (0.5, 0.5)?  No:
        // minimising w1 subject to w1 >= w2, w1 + w2 = 1 gives w1 = 0.5.
        let lp = LinearProgram::new(2)
            .minimize(vec![1.0, 0.0])
            .with_eq(vec![1.0, 1.0], 1.0)
            .with_leq(vec![-1.0, 1.0], 0.0);
        let out = lp.solve();
        assert!((out.objective().unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn redundant_constraints_ok() {
        // Duplicate equality rows must not confuse phase 1 / artificial removal.
        let lp = LinearProgram::new(2)
            .minimize(vec![1.0, 1.0])
            .with_eq(vec![1.0, 1.0], 1.0)
            .with_eq(vec![1.0, 1.0], 1.0);
        let out = lp.solve();
        assert!((out.objective().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_vertex_no_cycle() {
        // A classic degenerate LP; Bland's rule must terminate.
        let lp = LinearProgram::new(4)
            .minimize(vec![-0.75, 150.0, -0.02, 6.0])
            .with_leq(vec![0.25, -60.0, -0.04, 9.0], 0.0)
            .with_leq(vec![0.5, -90.0, -0.02, 3.0], 0.0)
            .with_leq(vec![0.0, 0.0, 1.0, 0.0], 1.0);
        let out = lp.solve();
        assert!(out.is_optimal());
        assert!((out.objective().unwrap() - (-0.05)).abs() < 1e-6);
    }

    #[test]
    fn outcome_accessors() {
        assert_eq!(LpOutcome::Infeasible.objective(), None);
        assert!(LpOutcome::Infeasible.solution().is_none());
        assert!(!LpOutcome::Unbounded.is_optimal());
    }
}
