//! Small dense linear algebra.
//!
//! Vertex enumeration of the preference region solves many tiny `d × d`
//! linear systems (one per candidate subset of tight constraints), so all we
//! need is Gaussian elimination with partial pivoting on row-major matrices.

use crate::EPS;

/// A dense row-major matrix of `f64`.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from rows.
    ///
    /// # Panics
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in rows {
            assert_eq!(row.len(), ncols, "inconsistent row length");
            data.extend_from_slice(row);
        }
        Self {
            rows: nrows,
            cols: ncols,
            data,
        }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow one row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix-vector product `A·x`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        (0..self.rows)
            .map(|r| self.row(r).iter().zip(x).map(|(a, b)| a * b).sum())
            .collect()
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

/// Solves the square linear system `A·x = b` by Gaussian elimination with
/// partial pivoting.
///
/// Returns `None` when the system is (numerically) singular, i.e. some pivot
/// has absolute value below [`EPS`]. This is exactly the behaviour vertex
/// enumeration needs: a singular subset of constraints does not define a
/// unique vertex and must be skipped.
pub fn solve_linear_system(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    assert_eq!(
        a.rows(),
        a.cols(),
        "solve_linear_system requires a square matrix"
    );
    assert_eq!(
        a.rows(),
        b.len(),
        "dimension mismatch between matrix and rhs"
    );
    let n = a.rows();
    // Augmented working copy.
    let mut work: Vec<Vec<f64>> = (0..n)
        .map(|r| {
            let mut row = a.row(r).to_vec();
            row.push(b[r]);
            row
        })
        .collect();

    for col in 0..n {
        // Partial pivoting: find the row with the largest absolute value in
        // this column at or below the diagonal.
        let pivot_row = (col..n)
            .max_by(|&i, &j| {
                work[i][col]
                    .abs()
                    .partial_cmp(&work[j][col].abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-empty range");
        if work[pivot_row][col].abs() < EPS {
            return None;
        }
        work.swap(col, pivot_row);
        let pivot = work[col][col];
        let (pivot_rows, lower_rows) = work.split_at_mut(col + 1);
        let pivot_row = &pivot_rows[col];
        for row in lower_rows.iter_mut() {
            let factor = row[col] / pivot;
            if factor == 0.0 {
                continue;
            }
            for (dst, src) in row[col..=n].iter_mut().zip(&pivot_row[col..=n]) {
                *dst -= factor * src;
            }
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut sum = work[row][n];
        for col in (row + 1)..n {
            sum -= work[row][col] * x[col];
        }
        x[row] = sum / work[row][row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq_slice;
    use proptest::prelude::*;

    #[test]
    fn identity_solve() {
        let a = Matrix::identity(3);
        let x = solve_linear_system(&a, &[1.0, 2.0, 3.0]).unwrap();
        assert!(approx_eq_slice(&x, &[1.0, 2.0, 3.0]));
    }

    #[test]
    fn simple_2x2() {
        // 2x + y = 5, x - y = 1  => x = 2, y = 1
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, -1.0]]);
        let x = solve_linear_system(&a, &[5.0, 1.0]).unwrap();
        assert!(approx_eq_slice(&x, &[2.0, 1.0]));
    }

    #[test]
    fn singular_returns_none() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(solve_linear_system(&a, &[1.0, 2.0]).is_none());
    }

    #[test]
    fn needs_pivoting() {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = solve_linear_system(&a, &[3.0, 4.0]).unwrap();
        assert!(approx_eq_slice(&x, &[4.0, 3.0]));
    }

    #[test]
    fn matrix_accessors() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m.mul_vec(&[1.0, 1.0, 1.0]), vec![6.0, 15.0]);
    }

    proptest! {
        /// For random well-conditioned systems constructed as A·x = b with a
        /// known x, the solver recovers x.
        #[test]
        fn recovers_known_solution(
            diag in proptest::collection::vec(1.0f64..5.0, 4),
            off in proptest::collection::vec(-0.2f64..0.2, 16),
            x in proptest::collection::vec(-10.0f64..10.0, 4),
        ) {
            // Diagonally dominant matrix => invertible and well conditioned.
            let mut a = Matrix::zeros(4, 4);
            for r in 0..4 {
                for c in 0..4 {
                    a[(r, c)] = if r == c { diag[r] } else { off[r * 4 + c] };
                }
            }
            let b = a.mul_vec(&x);
            let solved = solve_linear_system(&a, &b).unwrap();
            for (got, want) in solved.iter().zip(&x) {
                prop_assert!((got - want).abs() < 1e-6);
            }
        }
    }
}
