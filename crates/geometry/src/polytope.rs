//! Vertex enumeration of the preference region.
//!
//! Theorem 2 of the paper reduces the F-dominance test to comparing scores
//! under the set `V` of vertices of the preference region
//! `Ω = {ω ∈ S^{d−1} | A·ω ≤ b}`. This module computes `V`.
//!
//! The paper computes `V` via polar duality + quickhull; because `Ω` lives in
//! the (affine) simplex and both `c` and `d` are small in every workload the
//! paper evaluates (`c ≤ 7`, `d ≤ 8`), we instead use the textbook
//! characterisation that the paper itself states: *"a weight ω is a vertex of
//! Ω if and only if it is the unique solution to a d-subset of inequalities"*.
//! Concretely we enumerate every choice of `d − 1` constraints (user
//! constraints plus non-negativity constraints), make them tight together
//! with the simplex equality `Σω = 1`, solve the resulting `d × d` system and
//! keep the solutions that are feasible. This is exact, deterministic and
//! fast at these sizes; the asymptotic difference from quickhull is
//! irrelevant for the reproduction because vertex enumeration is a one-off
//! `O(c²)`–ish preprocessing step in all algorithms.

use crate::constraints::ConstraintSet;
use crate::linalg::{solve_linear_system, Matrix};

/// Computes the vertex set `V` of the preference region described by
/// `constraints` (user constraints + the unit simplex).
///
/// The vertices are returned sorted lexicographically so that the output is
/// deterministic; duplicates arising from different tight subsets selecting
/// the same geometric vertex are removed.
///
/// Returns an empty vector when the region is empty.
pub fn preference_region_vertices(constraints: &ConstraintSet) -> Vec<Vec<f64>> {
    let d = constraints.dim();

    // Special case: with a single weight the simplex is the point {1}.
    if d == 1 {
        return if constraints.contains(&[1.0]) {
            vec![vec![1.0]]
        } else {
            Vec::new()
        };
    }

    // Candidate tight rows: every user constraint and every non-negativity
    // constraint, each written as `coeffs · ω = rhs` when tight.
    let mut rows: Vec<(Vec<f64>, f64)> = Vec::with_capacity(constraints.len() + d);
    for c in constraints.constraints() {
        rows.push((c.coeffs.clone(), c.rhs));
    }
    for i in 0..d {
        let mut coeffs = vec![0.0; d];
        coeffs[i] = 1.0;
        rows.push((coeffs, 0.0));
    }

    let mut vertices: Vec<Vec<f64>> = Vec::new();
    let mut subset = vec![0usize; d - 1];
    enumerate_combinations(rows.len(), d - 1, &mut subset, 0, 0, &mut |chosen| {
        // Build the d×d system: the simplex equality plus the chosen rows.
        let mut mat_rows = Vec::with_capacity(d);
        let mut rhs = Vec::with_capacity(d);
        mat_rows.push(vec![1.0; d]);
        rhs.push(1.0);
        for &idx in chosen {
            mat_rows.push(rows[idx].0.clone());
            rhs.push(rows[idx].1);
        }
        let matrix = Matrix::from_rows(&mat_rows);
        if let Some(candidate) = solve_linear_system(&matrix, &rhs) {
            if is_feasible(constraints, &candidate) && !contains_vertex(&vertices, &candidate) {
                vertices.push(candidate);
            }
        }
    });

    vertices.sort_by(|a, b| {
        a.iter()
            .zip(b)
            .find_map(|(x, y)| x.partial_cmp(y).filter(|o| o.is_ne()))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    vertices
}

/// Feasibility check with a tolerance suited to coordinates obtained from a
/// linear solve.
fn is_feasible(constraints: &ConstraintSet, omega: &[f64]) -> bool {
    const FEAS_EPS: f64 = 1e-7;
    if omega.iter().any(|&w| w < -FEAS_EPS || !w.is_finite()) {
        return false;
    }
    if (omega.iter().sum::<f64>() - 1.0).abs() > FEAS_EPS {
        return false;
    }
    constraints
        .constraints()
        .iter()
        .all(|c| c.slack(omega) <= FEAS_EPS)
}

fn contains_vertex(vertices: &[Vec<f64>], candidate: &[f64]) -> bool {
    vertices
        .iter()
        .any(|v| v.iter().zip(candidate).all(|(a, b)| (a - b).abs() <= 1e-6))
}

/// Calls `f` with every `k`-combination of `{0, …, n−1}`.
fn enumerate_combinations(
    n: usize,
    k: usize,
    scratch: &mut [usize],
    depth: usize,
    start: usize,
    f: &mut impl FnMut(&[usize]),
) {
    if depth == k {
        f(&scratch[..k]);
        return;
    }
    // Not enough remaining elements to fill the combination.
    if start + (k - depth) > n {
        return;
    }
    for i in start..n {
        scratch[depth] = i;
        enumerate_combinations(n, k, scratch, depth + 1, i + 1, f);
    }
}

/// Scores of a point under every vertex of `V`, i.e. the score-space mapping
/// `SV(t) = (S_{ω_1}(t), …, S_{ω_{d'}}(t))` of §III-B.
pub fn score_vector(coords: &[f64], vertices: &[Vec<f64>]) -> Vec<f64> {
    vertices
        .iter()
        .map(|v| crate::point::score(coords, v))
        .collect()
}

/// Returns `true` when `omega` is a vertex of the region described by
/// `constraints`, up to tolerance. Convenience helper for tests.
pub fn is_vertex_of(constraints: &ConstraintSet, omega: &[f64]) -> bool {
    preference_region_vertices(constraints)
        .iter()
        .any(|v| v.iter().zip(omega).all(|(a, b)| (a - b).abs() <= 1e-6))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::{ConstraintSet, LinearConstraint, WeightRatio};

    fn sorted(mut v: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v
    }

    #[test]
    fn simplex_vertices_are_unit_vectors() {
        let cs = ConstraintSet::new(3);
        let v = preference_region_vertices(&cs);
        assert_eq!(v.len(), 3);
        let expected = sorted(vec![
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
        ]);
        for (got, want) in sorted(v).iter().zip(&expected) {
            assert!(crate::approx_eq_slice(got, want), "{got:?} vs {want:?}");
        }
    }

    #[test]
    fn weak_ranking_full_chain_vertices() {
        // WR with c = d − 1 has exactly d vertices:
        // (1,0,..), (1/2,1/2,0,..), ..., (1/d,...,1/d).
        for d in 2..=6 {
            let cs = ConstraintSet::weak_ranking(d, d - 1);
            let v = preference_region_vertices(&cs);
            assert_eq!(v.len(), d, "d = {d}");
            for k in 1..=d {
                let mut expected = vec![1.0 / k as f64; k];
                expected.resize(d, 0.0);
                assert!(
                    v.iter().any(|u| crate::approx_eq_slice(u, &expected)
                        || u.iter().zip(&expected).all(|(a, b)| (a - b).abs() < 1e-6)),
                    "missing vertex {expected:?} for d = {d}, got {v:?}"
                );
            }
        }
    }

    #[test]
    fn weak_ranking_partial_chain() {
        // d = 3, c = 1 (ω1 ≥ ω2): vertices are (1,0,0), (1/2,1/2,0), (0,0,1),
        // (1/2, 0, 1/2)?  Let's check: region = simplex ∩ {ω1 ≥ ω2}.  Its
        // vertices are (1,0,0), (1/2,1/2,0), (0,0,1) and additionally the
        // intersection of ω2=... Actually the facets are ω1=ω2, ω2=0, ω3=0,
        // ω1=0(infeasible except where ω2=0 too).  Vertices: (1,0,0),
        // (1/2,1/2,0), (0,0,1).
        let cs = ConstraintSet::weak_ranking(3, 1);
        let v = preference_region_vertices(&cs);
        assert_eq!(v.len(), 3, "{v:?}");
        for expected in [
            vec![1.0, 0.0, 0.0],
            vec![0.5, 0.5, 0.0],
            vec![0.0, 0.0, 1.0],
        ] {
            assert!(
                v.iter()
                    .any(|u| u.iter().zip(&expected).all(|(a, b)| (a - b).abs() < 1e-6)),
                "missing {expected:?} in {v:?}"
            );
        }
    }

    #[test]
    fn weight_ratio_region_vertices_2d() {
        // d = 2, ratio ∈ [0.5, 2]: ω1/ω2 ∈ [0.5, 2] on the simplex gives the
        // segment ω1 ∈ [1/3, 2/3], so two vertices.
        let wr = WeightRatio::uniform(2, 0.5, 2.0);
        let cs = wr.to_constraint_set();
        let v = preference_region_vertices(&cs);
        assert_eq!(v.len(), 2, "{v:?}");
        let v = sorted(v);
        assert!((v[0][0] - 1.0 / 3.0).abs() < 1e-6);
        assert!((v[1][0] - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn weight_ratio_region_vertices_3d() {
        // d = 3, both ratios in [0.5, 2]: the ratio rectangle has 4 vertices,
        // each mapping to one vertex of Ω.
        let wr = WeightRatio::uniform(3, 0.5, 2.0);
        let cs = wr.to_constraint_set();
        let v = preference_region_vertices(&cs);
        assert_eq!(v.len(), 4, "{v:?}");
        // Every returned vertex must satisfy the ratio bounds.
        for omega in &v {
            assert!(omega[2] > 0.0);
            for i in 0..2 {
                let ratio = omega[i] / omega[2];
                assert!((0.5 - 1e-6..=2.0 + 1e-6).contains(&ratio), "{omega:?}");
            }
        }
    }

    #[test]
    fn infeasible_region_has_no_vertices() {
        let mut cs = ConstraintSet::new(3);
        cs.push(LinearConstraint::new(vec![1.0, 1.0, 1.0], -1.0));
        assert!(preference_region_vertices(&cs).is_empty());
    }

    #[test]
    fn one_dimensional_region() {
        let cs = ConstraintSet::new(1);
        assert_eq!(preference_region_vertices(&cs), vec![vec![1.0]]);
        let mut infeasible = ConstraintSet::new(1);
        infeasible.push(LinearConstraint::new(vec![1.0], 0.5));
        assert!(preference_region_vertices(&infeasible).is_empty());
    }

    #[test]
    fn redundant_constraints_do_not_add_vertices() {
        let mut cs = ConstraintSet::weak_ranking(3, 2);
        // A constraint implied by the simplex: ω1 ≤ 1.
        cs.push(LinearConstraint::new(vec![1.0, 0.0, 0.0], 1.0));
        let v = preference_region_vertices(&cs);
        assert_eq!(v.len(), 3, "{v:?}");
    }

    #[test]
    fn score_vector_matches_manual_computation() {
        let vertices = vec![vec![1.0, 0.0], vec![0.5, 0.5]];
        let sv = score_vector(&[2.0, 4.0], &vertices);
        assert_eq!(sv, vec![2.0, 3.0]);
    }

    #[test]
    fn every_vertex_is_in_region_and_recognised() {
        let cs = ConstraintSet::weak_ranking(5, 4);
        let v = preference_region_vertices(&cs);
        for omega in &v {
            assert!(cs.contains(omega), "{omega:?}");
            assert!(is_vertex_of(&cs, omega));
        }
        assert!(!is_vertex_of(&cs, &[0.4, 0.3, 0.15, 0.1, 0.05]));
    }

    #[test]
    fn vertices_are_sorted_and_unique() {
        let cs = ConstraintSet::weak_ranking(4, 3);
        let v = preference_region_vertices(&cs);
        for w in v.windows(2) {
            assert!(w[0].partial_cmp(&w[1]).unwrap().is_lt());
        }
    }
}
