//! d-dimensional points and the (weak) dominance relation.
//!
//! The paper assumes *lower values are preferred*, so an instance `t`
//! dominates `s` (written `t ⪯ s`) when `t[i] ≤ s[i]` in every dimension.
//! The F-dominance relation of the paper reduces to this plain dominance in
//! the score space (Theorem 2), which is why the whole algorithmic machinery
//! is built on top of this module.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A point in `R^d` with `f64` coordinates.
///
/// `Point` is deliberately a thin wrapper around `Vec<f64>`: the datasets used
/// by ARSP have small dimensionality (2–8 in the paper) and the hot loops
/// operate on borrowed coordinate slices, so there is nothing to gain from a
/// fixed-size representation while flexibility across `d` would be lost.
#[derive(Clone, PartialEq)]
pub struct Point {
    coords: Vec<f64>,
}

impl Point {
    /// Creates a point from its coordinates.
    pub fn new(coords: Vec<f64>) -> Self {
        Self { coords }
    }

    /// Creates the origin of `R^d`.
    pub fn origin(dim: usize) -> Self {
        Self {
            coords: vec![0.0; dim],
        }
    }

    /// Creates a point with every coordinate set to `value`.
    pub fn splat(dim: usize, value: f64) -> Self {
        Self {
            coords: vec![value; dim],
        }
    }

    /// Dimensionality of the point.
    #[inline]
    pub fn dim(&self) -> usize {
        self.coords.len()
    }

    /// Borrow the coordinates.
    #[inline]
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// Mutably borrow the coordinates.
    #[inline]
    pub fn coords_mut(&mut self) -> &mut [f64] {
        &mut self.coords
    }

    /// Consume the point and return its coordinate vector.
    pub fn into_coords(self) -> Vec<f64> {
        self.coords
    }

    /// Weak dominance: `self ⪯ other` iff every coordinate of `self` is `≤`
    /// the corresponding coordinate of `other`.
    ///
    /// This is the relation written `⪯` throughout the paper (lower is
    /// better). Note that a point weakly dominates itself; callers that need
    /// the paper's "dominates another object `s ≠ t`" semantics must exclude
    /// identity at the instance level, not at the coordinate level.
    ///
    /// # Panics
    /// Panics in debug builds if the dimensionalities differ.
    #[inline]
    pub fn dominates(&self, other: &Point) -> bool {
        dominates(&self.coords, &other.coords)
    }

    /// Strict dominance: `self ⪯ other` and the points differ in at least one
    /// coordinate.
    #[inline]
    pub fn strictly_dominates(&self, other: &Point) -> bool {
        strictly_dominates(&self.coords, &other.coords)
    }

    /// Linear score `S_ω(t) = Σ_i ω[i]·t[i]` of this point under weight `ω`.
    #[inline]
    pub fn score(&self, weight: &[f64]) -> f64 {
        score(&self.coords, weight)
    }

    /// Squared Euclidean distance to another point (used only by tests and
    /// generators; never by the algorithms themselves).
    pub fn distance_sq(&self, other: &Point) -> f64 {
        debug_assert_eq!(self.dim(), other.dim());
        self.coords
            .iter()
            .zip(other.coords.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum()
    }

    /// Coordinate-wise minimum of two points.
    pub fn component_min(&self, other: &Point) -> Point {
        debug_assert_eq!(self.dim(), other.dim());
        Point::new(
            self.coords
                .iter()
                .zip(other.coords.iter())
                .map(|(a, b)| a.min(*b))
                .collect(),
        )
    }

    /// Coordinate-wise maximum of two points.
    pub fn component_max(&self, other: &Point) -> Point {
        debug_assert_eq!(self.dim(), other.dim());
        Point::new(
            self.coords
                .iter()
                .zip(other.coords.iter())
                .map(|(a, b)| a.max(*b))
                .collect(),
        )
    }

    /// Coordinate-wise difference `self − other`.
    pub fn sub(&self, other: &Point) -> Point {
        debug_assert_eq!(self.dim(), other.dim());
        Point::new(
            self.coords
                .iter()
                .zip(other.coords.iter())
                .map(|(a, b)| a - b)
                .collect(),
        )
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Point{:?}", self.coords)
    }
}

impl Index<usize> for Point {
    type Output = f64;

    #[inline]
    fn index(&self, index: usize) -> &f64 {
        &self.coords[index]
    }
}

impl IndexMut<usize> for Point {
    #[inline]
    fn index_mut(&mut self, index: usize) -> &mut f64 {
        &mut self.coords[index]
    }
}

impl From<Vec<f64>> for Point {
    fn from(coords: Vec<f64>) -> Self {
        Point::new(coords)
    }
}

impl From<&[f64]> for Point {
    fn from(coords: &[f64]) -> Self {
        Point::new(coords.to_vec())
    }
}

/// A borrowed view of a point: a coordinate slice with the point operations
/// attached. This is the hot-path representation — the flat columnar stores
/// hand out `PointRef`s into their contiguous coordinate arrays, so the
/// algorithms never clone a [`Point`] to compare or score instances.
///
/// All operations are bitwise identical to their [`Point`] counterparts (they
/// share the same slice-level implementations).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PointRef<'a>(pub &'a [f64]);

impl<'a> PointRef<'a> {
    /// Dimensionality of the point.
    #[inline]
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// The underlying coordinate slice.
    #[inline]
    pub fn coords(&self) -> &'a [f64] {
        self.0
    }

    /// Weak dominance against another borrowed point.
    #[inline]
    pub fn dominates(&self, other: PointRef<'_>) -> bool {
        dominates(self.0, other.0)
    }

    /// Strict dominance against another borrowed point.
    #[inline]
    pub fn strictly_dominates(&self, other: PointRef<'_>) -> bool {
        strictly_dominates(self.0, other.0)
    }

    /// Linear score `S_ω(t) = Σ_i ω[i]·t[i]` under weight `ω`.
    #[inline]
    pub fn score(&self, weight: &[f64]) -> f64 {
        score(self.0, weight)
    }

    /// An owned copy of the point (cold paths only).
    pub fn to_point(&self) -> Point {
        Point::from(self.0)
    }
}

impl<'a> From<&'a [f64]> for PointRef<'a> {
    fn from(coords: &'a [f64]) -> Self {
        PointRef(coords)
    }
}

impl<'a> From<&'a Point> for PointRef<'a> {
    fn from(p: &'a Point) -> Self {
        PointRef(p.coords())
    }
}

/// Slice-level weak dominance, the hot-path version of [`Point::dominates`].
#[inline]
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).all(|(x, y)| x <= y)
}

/// Slice-level strict dominance (`⪯` and not coordinate-wise equal).
#[inline]
pub fn strictly_dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut strict = false;
    for (x, y) in a.iter().zip(b.iter()) {
        if x > y {
            return false;
        }
        if x < y {
            strict = true;
        }
    }
    strict
}

/// Slice-level linear score `Σ_i ω[i]·t[i]`.
#[inline]
pub fn score(coords: &[f64], weight: &[f64]) -> f64 {
    debug_assert_eq!(coords.len(), weight.len());
    coords.iter().zip(weight.iter()).map(|(c, w)| c * w).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dominance_basic() {
        let a = Point::new(vec![1.0, 2.0]);
        let b = Point::new(vec![1.0, 3.0]);
        let c = Point::new(vec![0.5, 4.0]);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(!a.dominates(&c));
        assert!(!c.dominates(&a));
        assert!(a.dominates(&a));
        assert!(!a.strictly_dominates(&a));
        assert!(a.strictly_dominates(&b));
    }

    #[test]
    fn score_is_weighted_sum() {
        let p = Point::new(vec![2.0, 4.0, 6.0]);
        assert_eq!(p.score(&[0.5, 0.25, 0.25]), 1.0 + 1.0 + 1.5);
    }

    #[test]
    fn component_min_max() {
        let a = Point::new(vec![1.0, 5.0]);
        let b = Point::new(vec![3.0, 2.0]);
        assert_eq!(a.component_min(&b).coords(), &[1.0, 2.0]);
        assert_eq!(a.component_max(&b).coords(), &[3.0, 5.0]);
    }

    #[test]
    fn sub_and_distance() {
        let a = Point::new(vec![3.0, 4.0]);
        let o = Point::origin(2);
        assert_eq!(a.sub(&o).coords(), &[3.0, 4.0]);
        assert_eq!(a.distance_sq(&o), 25.0);
    }

    #[test]
    fn point_ref_matches_point_operations() {
        let a = Point::new(vec![1.0, 2.0, 3.0]);
        let b = Point::new(vec![1.0, 3.0, 3.0]);
        let (ra, rb) = (PointRef::from(&a), PointRef::from(&b));
        assert_eq!(ra.dim(), 3);
        assert_eq!(ra.coords(), a.coords());
        assert_eq!(ra.dominates(rb), a.dominates(&b));
        assert_eq!(ra.strictly_dominates(rb), a.strictly_dominates(&b));
        let w = [0.2, 0.3, 0.5];
        assert_eq!(ra.score(&w), a.score(&w));
        assert_eq!(ra.to_point(), a);
        let slice: &[f64] = &[4.0, 5.0];
        assert_eq!(PointRef::from(slice).coords(), slice);
    }

    #[test]
    fn indexing() {
        let mut p = Point::splat(3, 1.0);
        p[1] = 7.0;
        assert_eq!(p[1], 7.0);
        assert_eq!(p[0], 1.0);
    }

    proptest! {
        /// Dominance is reflexive and transitive; strict dominance is irreflexive.
        #[test]
        fn dominance_partial_order(a in proptest::collection::vec(-10.0f64..10.0, 4),
                                   b in proptest::collection::vec(-10.0f64..10.0, 4),
                                   c in proptest::collection::vec(-10.0f64..10.0, 4)) {
            let (pa, pb, pc) = (Point::new(a), Point::new(b), Point::new(c));
            prop_assert!(pa.dominates(&pa));
            prop_assert!(!pa.strictly_dominates(&pa));
            if pa.dominates(&pb) && pb.dominates(&pc) {
                prop_assert!(pa.dominates(&pc));
            }
            if pa.strictly_dominates(&pb) {
                prop_assert!(!pb.strictly_dominates(&pa));
            }
        }

        /// The component-wise min dominates both arguments and the max is dominated by both.
        #[test]
        fn min_max_envelope(a in proptest::collection::vec(-10.0f64..10.0, 3),
                            b in proptest::collection::vec(-10.0f64..10.0, 3)) {
            let (pa, pb) = (Point::new(a), Point::new(b));
            let lo = pa.component_min(&pb);
            let hi = pa.component_max(&pb);
            prop_assert!(lo.dominates(&pa) && lo.dominates(&pb));
            prop_assert!(pa.dominates(&hi) && pb.dominates(&hi));
        }

        /// Scores under non-negative weights are monotone with respect to dominance.
        #[test]
        fn score_monotone(a in proptest::collection::vec(0.0f64..10.0, 3),
                          delta in proptest::collection::vec(0.0f64..5.0, 3),
                          w in proptest::collection::vec(0.0f64..1.0, 3)) {
            let pa = Point::new(a.clone());
            let pb = Point::new(a.iter().zip(&delta).map(|(x, d)| x + d).collect());
            prop_assert!(pa.dominates(&pb));
            prop_assert!(pa.score(&w) <= pb.score(&w) + 1e-12);
        }
    }
}
