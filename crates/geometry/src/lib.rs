//! Computational geometry substrate for the ARSP reproduction.
//!
//! This crate contains everything geometric that the paper
//! *"Computing All Restricted Skyline Probabilities on Uncertain Datasets"*
//! (ICDE 2024) relies on but does not itself contribute:
//!
//! * [`point::Point`] — d-dimensional points with (weak) dominance tests,
//! * [`mbr::Mbr`] — minimum bounding rectangles used by every spatial index,
//! * [`linalg`] — small dense linear algebra (Gaussian elimination),
//! * [`lp`] — a dense simplex LP solver used by the LP-based reference
//!   F-dominance test and by feasibility checks during vertex enumeration,
//! * [`constraints`] — the preference region `Ω = {ω ∈ S^{d−1} | Aω ≤ b}`
//!   described by linear constraints, weak-ranking (WR) constraints and
//!   weight-ratio constraints,
//! * [`polytope`] — vertex enumeration of the preference region (the set `V`
//!   of Theorem 2),
//! * [`hyperplane`] — hyperplanes in the `x[d] = Σ a_i x[i] + b` form, the
//!   point/hyperplane duality of §IV-A, and half-space side tests,
//! * [`fdom`] — the F-dominance tests of Theorems 2 and 5 plus an LP-based
//!   reference implementation used for cross-validation in tests.
//!
//! Everything is implemented from scratch on `f64`; the only tolerance used is
//! [`EPS`], and only where geometric degeneracy actually matters (singular
//! systems, feasibility of computed vertices, hyperplane side tests).

#![deny(unsafe_code)]

pub mod constraints;
pub mod fdom;
pub mod hyperplane;
pub mod linalg;
pub mod lp;
pub mod mbr;
pub mod point;
pub mod polytope;

pub use constraints::{ConstraintSet, LinearConstraint, WeightRatio};
pub use fdom::{FDominance, LinearFDominance, WeightRatioFDominance};
pub use hyperplane::{HalfSpaceSide, Hyperplane};
pub use mbr::Mbr;
pub use point::{Point, PointRef};
pub use polytope::preference_region_vertices;

/// Tolerance used for geometric degeneracy decisions (singularity, feasibility
/// of enumerated vertices, hyperplane side classification).
///
/// Dominance tests deliberately do **not** use a tolerance: the paper defines
/// `t ≺_F s` through plain `≤` comparisons of scores and the algorithms are
/// only consistent with each other if every component uses the same exact
/// comparison.
pub const EPS: f64 = 1e-9;

/// Returns `true` if `a` and `b` are within `EPS` of each other.
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPS
}

/// Returns `true` if every pair of coordinates is within `EPS`.
pub fn approx_eq_slice(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| approx_eq(*x, *y))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_within_eps() {
        assert!(approx_eq(1.0, 1.0 + EPS / 2.0));
        assert!(!approx_eq(1.0, 1.0 + EPS * 10.0));
    }

    #[test]
    fn approx_eq_slice_checks_length_and_values() {
        assert!(approx_eq_slice(&[1.0, 2.0], &[1.0, 2.0]));
        assert!(!approx_eq_slice(&[1.0, 2.0], &[1.0]));
        assert!(!approx_eq_slice(&[1.0, 2.0], &[1.0, 2.1]));
    }
}
