//! Minimum bounding rectangles (MBRs).
//!
//! Every spatial index in the reproduction (R-tree, aggregated R-tree,
//! kd-tree and quadtree partitioners) summarises a set of points by its MBR
//! and reasons about dominance through the MBR corners, exactly as the paper
//! does with `P_min` / `P_max` in Algorithm 1 and `N_min` in Algorithm 2.

use crate::point::{dominates, Point};

/// An axis-aligned minimum bounding rectangle `[min, max]` in `R^d`.
#[derive(Clone, Debug, PartialEq)]
pub struct Mbr {
    min: Point,
    max: Point,
}

impl Mbr {
    /// Creates an MBR from explicit corners.
    ///
    /// # Panics
    /// Panics if the corners have different dimensionality or if any minimum
    /// coordinate exceeds the corresponding maximum.
    pub fn new(min: Point, max: Point) -> Self {
        assert_eq!(
            min.dim(),
            max.dim(),
            "MBR corners must share dimensionality"
        );
        assert!(
            min.coords().iter().zip(max.coords()).all(|(a, b)| a <= b),
            "MBR min corner must dominate max corner"
        );
        Self { min, max }
    }

    /// Creates a degenerate MBR covering a single point.
    pub fn from_point(p: &Point) -> Self {
        Self {
            min: p.clone(),
            max: p.clone(),
        }
    }

    /// Computes the MBR of a non-empty set of coordinate slices.
    ///
    /// Returns `None` for an empty iterator.
    pub fn from_coord_slices<'a, I>(mut iter: I) -> Option<Self>
    where
        I: Iterator<Item = &'a [f64]>,
    {
        let first = iter.next()?;
        let mut min = first.to_vec();
        let mut max = first.to_vec();
        for coords in iter {
            for (i, &c) in coords.iter().enumerate() {
                if c < min[i] {
                    min[i] = c;
                }
                if c > max[i] {
                    max[i] = c;
                }
            }
        }
        Some(Self {
            min: Point::new(min),
            max: Point::new(max),
        })
    }

    /// Computes the MBR of a non-empty set of points.
    pub fn from_points<'a, I>(iter: I) -> Option<Self>
    where
        I: IntoIterator<Item = &'a Point>,
    {
        Self::from_coord_slices(iter.into_iter().map(|p| p.coords()))
    }

    /// Computes the MBR of a set of rows of a flat, `dim`-strided coordinate
    /// array (row `i` is `coords[i*dim..(i+1)*dim]`). Returns `None` for an
    /// empty row set. This is the columnar-store counterpart of
    /// [`Mbr::from_coord_slices`] and produces bitwise-identical corners
    /// (minimum/maximum are pure comparisons).
    pub fn from_flat_rows<I>(coords: &[f64], dim: usize, rows: I) -> Option<Self>
    where
        I: IntoIterator<Item = usize>,
    {
        Self::from_coord_slices(rows.into_iter().map(|i| &coords[i * dim..(i + 1) * dim]))
    }

    /// Minimum ("best") corner.
    #[inline]
    pub fn min(&self) -> &Point {
        &self.min
    }

    /// Maximum ("worst") corner.
    #[inline]
    pub fn max(&self) -> &Point {
        &self.max
    }

    /// Dimensionality of the MBR.
    #[inline]
    pub fn dim(&self) -> usize {
        self.min.dim()
    }

    /// Extends this MBR to cover the given coordinates.
    pub fn extend_coords(&mut self, coords: &[f64]) {
        debug_assert_eq!(coords.len(), self.dim());
        for (i, &c) in coords.iter().enumerate() {
            if c < self.min[i] {
                self.min[i] = c;
            }
            if c > self.max[i] {
                self.max[i] = c;
            }
        }
    }

    /// Extends this MBR to cover another MBR.
    pub fn extend_mbr(&mut self, other: &Mbr) {
        self.extend_coords(other.min.coords());
        self.extend_coords(other.max.coords());
    }

    /// Union of two MBRs.
    pub fn union(&self, other: &Mbr) -> Mbr {
        let mut out = self.clone();
        out.extend_mbr(other);
        out
    }

    /// Returns `true` when the point lies inside the rectangle (inclusive).
    pub fn contains(&self, coords: &[f64]) -> bool {
        debug_assert_eq!(coords.len(), self.dim());
        coords
            .iter()
            .enumerate()
            .all(|(i, &c)| self.min[i] <= c && c <= self.max[i])
    }

    /// Returns `true` when the two rectangles intersect (inclusive).
    pub fn intersects(&self, other: &Mbr) -> bool {
        debug_assert_eq!(self.dim(), other.dim());
        (0..self.dim()).all(|i| self.min[i] <= other.max[i] && other.min[i] <= self.max[i])
    }

    /// Returns `true` when `other` is fully contained in `self` (inclusive).
    pub fn contains_mbr(&self, other: &Mbr) -> bool {
        (0..self.dim()).all(|i| self.min[i] <= other.min[i] && other.max[i] <= self.max[i])
    }

    /// Returns `true` when the given point weakly dominates the *minimum*
    /// corner, i.e. it dominates every point that could lie in the rectangle.
    #[inline]
    pub fn dominated_entirely_by(&self, coords: &[f64]) -> bool {
        dominates(coords, self.min.coords())
    }

    /// Returns `true` when the given point weakly dominates the *maximum*
    /// corner, i.e. it may dominate some point of the rectangle.
    #[inline]
    pub fn possibly_dominated_by(&self, coords: &[f64]) -> bool {
        dominates(coords, self.max.coords())
    }

    /// Volume (product of side lengths); zero for degenerate rectangles.
    pub fn volume(&self) -> f64 {
        (0..self.dim()).map(|i| self.max[i] - self.min[i]).product()
    }

    /// Margin (sum of side lengths), used by R-tree split heuristics.
    pub fn margin(&self) -> f64 {
        (0..self.dim()).map(|i| self.max[i] - self.min[i]).sum()
    }

    /// Centre of the rectangle.
    pub fn center(&self) -> Point {
        Point::new(
            (0..self.dim())
                .map(|i| 0.5 * (self.min[i] + self.max[i]))
                .collect(),
        )
    }

    /// Intersection volume of two MBRs (zero when disjoint).
    pub fn intersection_volume(&self, other: &Mbr) -> f64 {
        let mut v = 1.0;
        for i in 0..self.dim() {
            let lo = self.min[i].max(other.min[i]);
            let hi = self.max[i].min(other.max[i]);
            if hi <= lo {
                return 0.0;
            }
            v *= hi - lo;
        }
        v
    }
}

/// Widens `[min, max]` (two caller-owned slices) to cover `coords` in place.
/// The allocation-free building block the flat traversals use to accumulate
/// node bounds in a scratch arena without materialising intermediate [`Mbr`]
/// values.
#[inline]
pub fn extend_bounds(min: &mut [f64], max: &mut [f64], coords: &[f64]) {
    debug_assert_eq!(min.len(), coords.len());
    debug_assert_eq!(max.len(), coords.len());
    for (i, &c) in coords.iter().enumerate() {
        if c < min[i] {
            min[i] = c;
        }
        if c > max[i] {
            max[i] = c;
        }
    }
}

/// Resets `[min, max]` to the empty bounds (`+∞` / `−∞`), ready for
/// [`extend_bounds`] accumulation.
#[inline]
pub fn reset_bounds(min: &mut [f64], max: &mut [f64]) {
    min.fill(f64::INFINITY);
    max.fill(f64::NEG_INFINITY);
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mbr(min: &[f64], max: &[f64]) -> Mbr {
        Mbr::new(Point::from(min), Point::from(max))
    }

    #[test]
    fn from_points_covers_all() {
        let pts = [
            Point::new(vec![1.0, 5.0]),
            Point::new(vec![3.0, 2.0]),
            Point::new(vec![2.0, 4.0]),
        ];
        let r = Mbr::from_points(pts.iter()).unwrap();
        assert_eq!(r.min().coords(), &[1.0, 2.0]);
        assert_eq!(r.max().coords(), &[3.0, 5.0]);
        assert!(pts.iter().all(|p| r.contains(p.coords())));
    }

    #[test]
    fn empty_set_has_no_mbr() {
        assert!(Mbr::from_points(std::iter::empty()).is_none());
    }

    #[test]
    fn flat_rows_and_bounds_helpers_match_pointwise_construction() {
        let coords = [1.0, 5.0, 3.0, 2.0, 2.0, 4.0]; // 3 rows × 2 dims
        let flat = Mbr::from_flat_rows(&coords, 2, 0..3).unwrap();
        let pts = [
            Point::new(vec![1.0, 5.0]),
            Point::new(vec![3.0, 2.0]),
            Point::new(vec![2.0, 4.0]),
        ];
        assert_eq!(flat, Mbr::from_points(pts.iter()).unwrap());
        assert!(Mbr::from_flat_rows(&coords, 2, std::iter::empty()).is_none());

        let mut min = vec![0.0; 2];
        let mut max = vec![0.0; 2];
        reset_bounds(&mut min, &mut max);
        for row in 0..3 {
            extend_bounds(&mut min, &mut max, &coords[row * 2..(row + 1) * 2]);
        }
        assert_eq!(min.as_slice(), flat.min().coords());
        assert_eq!(max.as_slice(), flat.max().coords());
    }

    #[test]
    fn contains_and_intersects() {
        let a = mbr(&[0.0, 0.0], &[2.0, 2.0]);
        let b = mbr(&[1.0, 1.0], &[3.0, 3.0]);
        let c = mbr(&[2.5, 2.5], &[4.0, 4.0]);
        assert!(a.intersects(&b));
        assert!(b.intersects(&c));
        assert!(!a.intersects(&c));
        assert!(a.contains(&[1.0, 1.0]));
        assert!(!a.contains(&[1.0, 2.5]));
        assert!(a.contains_mbr(&mbr(&[0.5, 0.5], &[1.5, 1.5])));
        assert!(!a.contains_mbr(&b));
    }

    #[test]
    fn dominance_against_corners() {
        let r = mbr(&[2.0, 2.0], &[4.0, 4.0]);
        // (1,1) dominates the min corner, so it dominates every point in r.
        assert!(r.dominated_entirely_by(&[1.0, 1.0]));
        // (3,1) does not dominate the min corner but dominates the max corner:
        // it may dominate some points of r.
        assert!(!r.dominated_entirely_by(&[3.0, 1.0]));
        assert!(r.possibly_dominated_by(&[3.0, 1.0]));
        // (5,5) cannot dominate anything in r.
        assert!(!r.possibly_dominated_by(&[5.0, 5.0]));
    }

    #[test]
    fn volume_margin_center() {
        let r = mbr(&[0.0, 0.0, 0.0], &[1.0, 2.0, 3.0]);
        assert_eq!(r.volume(), 6.0);
        assert_eq!(r.margin(), 6.0);
        assert_eq!(r.center().coords(), &[0.5, 1.0, 1.5]);
    }

    #[test]
    fn intersection_volume() {
        let a = mbr(&[0.0, 0.0], &[2.0, 2.0]);
        let b = mbr(&[1.0, 1.0], &[3.0, 3.0]);
        assert_eq!(a.intersection_volume(&b), 1.0);
        let c = mbr(&[5.0, 5.0], &[6.0, 6.0]);
        assert_eq!(a.intersection_volume(&c), 0.0);
    }

    #[test]
    #[should_panic]
    fn invalid_corners_panic() {
        let _ = mbr(&[1.0, 0.0], &[0.0, 1.0]);
    }

    proptest! {
        /// The MBR of a point set contains every point, and its min/max corners
        /// dominate / are dominated by every point.
        #[test]
        fn mbr_envelopes_points(pts in proptest::collection::vec(
            proptest::collection::vec(-100.0f64..100.0, 3), 1..40)) {
            let points: Vec<Point> = pts.into_iter().map(Point::new).collect();
            let r = Mbr::from_points(points.iter()).unwrap();
            for p in &points {
                prop_assert!(r.contains(p.coords()));
                prop_assert!(r.min().dominates(p));
                prop_assert!(p.dominates(r.max()));
            }
        }

        /// Union is commutative and contains both operands.
        #[test]
        fn union_contains_operands(a in proptest::collection::vec(-10.0f64..10.0, 2),
                                   b in proptest::collection::vec(-10.0f64..10.0, 2),
                                   c in proptest::collection::vec(-10.0f64..10.0, 2),
                                   d in proptest::collection::vec(-10.0f64..10.0, 2)) {
            let r1 = Mbr::from_points([Point::new(a), Point::new(b)].iter()).unwrap();
            let r2 = Mbr::from_points([Point::new(c), Point::new(d)].iter()).unwrap();
            let u = r1.union(&r2);
            prop_assert!(u.contains_mbr(&r1));
            prop_assert!(u.contains_mbr(&r2));
            prop_assert_eq!(u, r2.union(&r1));
        }
    }
}
