//! F-dominance tests.
//!
//! Given the preference region `Ω` (a set of linear scoring functions), an
//! instance `t` *F-dominates* `s` when `S_ω(t) ≤ S_ω(s)` for every `ω ∈ Ω`.
//! The paper provides three ways to decide this:
//!
//! * **Theorem 2 (vertex-based test)** — compare the scores under the vertex
//!   set `V` of `Ω`; implemented by [`LinearFDominance`]. Cost `O(d·d')`.
//! * **Theorem 5 (weight-ratio test)** — for weight ratio constraints the
//!   test collapses to a single `O(d)` expression; implemented by
//!   [`WeightRatioFDominance`].
//! * **LP-based test** — solve problem (4) directly; implemented by
//!   [`LpFDominance`] and used as the reference oracle in tests.
//!
//! All tests share the [`FDominance`] trait so the algorithms in `arsp-core`
//! can be written once and exercised with any of them.
//!
//! Coordinate-identical instances F-dominate each other under the paper's
//! definition (`t ≺_F s` only requires `s ≠ t` *as instances*, not distinct
//! coordinates); the implementations below are therefore reflexive at the
//! coordinate level and instance identity is handled by the algorithms.

use crate::constraints::{ConstraintSet, WeightRatio};
use crate::polytope::{preference_region_vertices, score_vector};

/// A decision procedure for the F-dominance relation `t ≺_F s`.
pub trait FDominance {
    /// Returns `true` when `t` F-dominates `s`, i.e. `S_ω(t) ≤ S_ω(s)` for
    /// every scoring function in `F`.
    fn f_dominates(&self, t: &[f64], s: &[f64]) -> bool;

    /// Dataset dimensionality the test operates on.
    fn dim(&self) -> usize;
}

/// Vertex-based F-dominance test (Theorem 2) for linear scoring functions
/// whose weights satisfy arbitrary linear constraints.
#[derive(Clone, Debug)]
pub struct LinearFDominance {
    dim: usize,
    vertices: Vec<Vec<f64>>,
}

impl LinearFDominance {
    /// Builds the test from a constraint set by enumerating the vertices of
    /// the preference region.
    ///
    /// # Panics
    /// Panics if the preference region is empty (an empty `F` would make
    /// every pair of instances mutually dominating, which the paper rules
    /// out).
    pub fn from_constraints(constraints: &ConstraintSet) -> Self {
        let vertices = preference_region_vertices(constraints);
        assert!(
            !vertices.is_empty(),
            "the preference region is empty; no scoring function satisfies the constraints"
        );
        Self {
            dim: constraints.dim(),
            vertices,
        }
    }

    /// Builds the test from an explicit vertex set (used when the caller has
    /// already enumerated the vertices).
    pub fn from_vertices(dim: usize, vertices: Vec<Vec<f64>>) -> Self {
        assert!(!vertices.is_empty());
        for v in &vertices {
            assert_eq!(v.len(), dim);
        }
        Self { dim, vertices }
    }

    /// The vertex set `V` of the preference region.
    pub fn vertices(&self) -> &[Vec<f64>] {
        &self.vertices
    }

    /// Number of vertices `d' = |V|` (the dimensionality of the score space).
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Maps an instance into the score space: `SV(t) = (S_{ω_1}(t), …)`.
    ///
    /// Theorem 2 implies `t ≺_F s ⇔ SV(t) ⪯ SV(s)`, which is what the
    /// KDTT/QDTT/B&B algorithms exploit.
    pub fn map_to_score_space(&self, coords: &[f64]) -> Vec<f64> {
        score_vector(coords, &self.vertices)
    }

    /// Allocation-free variant of [`LinearFDominance::map_to_score_space`]:
    /// writes `SV(t)` into a caller-owned buffer of length
    /// [`LinearFDominance::num_vertices`]. Values are bitwise identical to the
    /// allocating variant (same per-vertex dot product, same order), which is
    /// what lets the flat columnar paths precompute score matrices that agree
    /// exactly with lazily mapped points.
    ///
    /// # Panics
    /// Panics if `out.len() != self.num_vertices()`.
    pub fn map_to_score_space_into(&self, coords: &[f64], out: &mut [f64]) {
        assert_eq!(out.len(), self.vertices.len(), "score buffer length");
        for (o, omega) in out.iter_mut().zip(&self.vertices) {
            *o = crate::point::score(coords, omega);
        }
    }
}

impl FDominance for LinearFDominance {
    fn f_dominates(&self, t: &[f64], s: &[f64]) -> bool {
        debug_assert_eq!(t.len(), self.dim);
        debug_assert_eq!(s.len(), self.dim);
        self.vertices.iter().all(|omega| {
            let st: f64 = omega.iter().zip(t).map(|(w, x)| w * x).sum();
            let ss: f64 = omega.iter().zip(s).map(|(w, x)| w * x).sum();
            st <= ss
        })
    }

    fn dim(&self) -> usize {
        self.dim
    }
}

/// The `O(d)` F-dominance test of Theorem 5 for weight ratio constraints.
///
/// `t ≺_F s` iff
/// `t[d] − s[d] ≤ Σ_{i<d} (l_i if s[i] > t[i] else h_i)·(s[i] − t[i])`.
#[derive(Clone, Debug)]
pub struct WeightRatioFDominance {
    ratio: WeightRatio,
}

impl WeightRatioFDominance {
    /// Creates the test from weight ratio constraints.
    pub fn new(ratio: WeightRatio) -> Self {
        Self { ratio }
    }

    /// The underlying weight ratio constraints.
    pub fn ratio(&self) -> &WeightRatio {
        &self.ratio
    }
}

impl FDominance for WeightRatioFDominance {
    fn f_dominates(&self, t: &[f64], s: &[f64]) -> bool {
        let d = self.dim();
        debug_assert_eq!(t.len(), d);
        debug_assert_eq!(s.len(), d);
        // Minimise h'(r) = Σ_{i<d} (s[i]−t[i])·r[i] + s[d]−t[d] over the box;
        // the minimiser picks l_i when the coefficient is positive and h_i
        // otherwise (Lemma 1 / Theorem 5).  t ≺_F s iff the minimum is ≥ 0.
        let mut rhs = 0.0;
        for (i, &(l, h)) in self.ratio.ranges().iter().enumerate() {
            let diff = s[i] - t[i];
            let r = if diff > 0.0 { l } else { h };
            rhs += r * diff;
        }
        t[d - 1] - s[d - 1] <= rhs
    }

    fn dim(&self) -> usize {
        self.ratio.dim()
    }
}

/// LP-based reference F-dominance test: solves problem (4) of the paper
/// directly. Slow; used only to cross-validate the other tests.
#[derive(Clone, Debug)]
pub struct LpFDominance {
    constraints: ConstraintSet,
}

impl LpFDominance {
    /// Creates the reference test from a constraint set.
    pub fn new(constraints: ConstraintSet) -> Self {
        Self { constraints }
    }
}

impl FDominance for LpFDominance {
    fn f_dominates(&self, t: &[f64], s: &[f64]) -> bool {
        // t ≺_F s  ⇔  min_{ω∈Ω} Σ_i (s[i] − t[i])·ω[i] ≥ 0.
        let objective: Vec<f64> = s.iter().zip(t).map(|(si, ti)| si - ti).collect();
        match self.constraints.minimize_over_region(&objective) {
            crate::lp::LpOutcome::Optimal { objective, .. } => objective >= -1e-9,
            // Infeasible regions are rejected at construction elsewhere;
            // treat them conservatively as "no dominance".
            _ => false,
        }
    }

    fn dim(&self) -> usize {
        self.constraints.dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The running example of the paper (Example 1 / Fig. 1):
    /// `F = {ω1·x1 + ω2·x2 | 0.5·ω2 ≤ ω1 ≤ 2·ω2}`, i.e. the ratio
    /// `ω1/ω2 ∈ [0.5, 2]`.
    fn example_ratio() -> WeightRatio {
        WeightRatio::uniform(2, 0.5, 2.0)
    }

    fn example_linear() -> LinearFDominance {
        LinearFDominance::from_constraints(&example_ratio().to_constraint_set())
    }

    #[test]
    fn vertex_based_matches_plain_dominance_when_unconstrained() {
        // With the whole simplex, F-dominance of linear functions is exactly
        // coordinate-wise dominance.
        let f = LinearFDominance::from_constraints(&ConstraintSet::new(3));
        assert!(f.f_dominates(&[1.0, 1.0, 1.0], &[2.0, 2.0, 2.0]));
        assert!(!f.f_dominates(&[1.0, 3.0, 1.0], &[2.0, 2.0, 2.0]));
        assert!(f.f_dominates(&[1.0, 1.0, 1.0], &[1.0, 1.0, 1.0]));
    }

    #[test]
    fn constrained_dominance_is_weaker_requirement() {
        // Under WR constraints a point may F-dominate another even when it
        // does not dominate it coordinate-wise.
        let cs = ConstraintSet::weak_ranking(2, 1); // ω1 ≥ ω2
        let f = LinearFDominance::from_constraints(&cs);
        // t = (1, 4), s = (2, 3.5): not coordinate-dominant, but under both
        // vertices (1,0) → 1 ≤ 2 and (0.5,0.5) → 2.5 ≤ 2.75.
        assert!(f.f_dominates(&[1.0, 4.0], &[2.0, 3.5]));
        assert!(!f.f_dominates(&[2.0, 3.5], &[1.0, 4.0]));
    }

    #[test]
    fn weight_ratio_test_matches_vertex_test_on_example() {
        let wr = WeightRatioFDominance::new(example_ratio());
        let lin = example_linear();
        let pts = [
            vec![2.0, 9.0],
            vec![3.0, 4.0],
            vec![9.0, 12.0],
            vec![6.0, 12.0],
            vec![8.0, 3.0],
            vec![11.0, 8.0],
            vec![4.0, 4.0],
        ];
        for a in &pts {
            for b in &pts {
                assert_eq!(
                    wr.f_dominates(a, b),
                    lin.f_dominates(a, b),
                    "disagreement on {a:?} ≺F {b:?}"
                );
            }
        }
    }

    #[test]
    fn lp_reference_agrees_with_vertex_test() {
        let cs = ConstraintSet::weak_ranking(3, 2);
        let lin = LinearFDominance::from_constraints(&cs);
        let lp = LpFDominance::new(cs);
        let pts = [
            vec![0.1, 0.5, 0.9],
            vec![0.4, 0.4, 0.4],
            vec![0.2, 0.9, 0.1],
            vec![0.9, 0.1, 0.2],
        ];
        for a in &pts {
            for b in &pts {
                assert_eq!(
                    lin.f_dominates(a, b),
                    lp.f_dominates(a, b),
                    "disagreement on {a:?} ≺F {b:?}"
                );
            }
        }
    }

    #[test]
    fn score_space_mapping_preserves_dominance() {
        let lin = example_linear();
        let a = [3.0, 4.0];
        let b = [9.0, 12.0];
        let sa = lin.map_to_score_space(&a);
        let sb = lin.map_to_score_space(&b);
        assert_eq!(sa.len(), lin.num_vertices());
        assert_eq!(lin.f_dominates(&a, &b), crate::point::dominates(&sa, &sb));
    }

    #[test]
    fn map_into_is_bitwise_identical_to_allocating_map() {
        let lin = example_linear();
        let pts = [[2.0, 9.0], [3.0, 4.0], [9.0, 12.0], [11.0, 8.0]];
        let mut buf = vec![0.0; lin.num_vertices()];
        for p in &pts {
            lin.map_to_score_space_into(p, &mut buf);
            assert_eq!(buf, lin.map_to_score_space(p));
        }
    }

    #[test]
    fn paper_example_relationships() {
        // From Example 3: t3,1 = (6, 12) and t3,2 ≈ (3, 13)?  The figure is
        // not fully specified, so we verify only the relationships the paper
        // states explicitly with coordinates we can infer:
        // t2,3 = (9, 12); t3,3 = (11, 8) lies on h_{t2,3,1} hence t3,3 ≺F t2,3;
        // t3,1 = (6, 12) lies below h_{t2,3,0} hence t3,1 ≺F t2,3.
        let wr = WeightRatioFDominance::new(example_ratio());
        let t23 = [9.0, 12.0];
        assert!(wr.f_dominates(&[11.0, 8.0], &t23));
        assert!(wr.f_dominates(&[6.0, 12.0], &t23));
        assert!(!wr.f_dominates(&t23, &[6.0, 12.0]));
    }

    #[test]
    #[should_panic]
    fn empty_preference_region_panics() {
        let mut cs = ConstraintSet::new(2);
        cs.push(crate::constraints::LinearConstraint::new(
            vec![1.0, 1.0],
            -5.0,
        ));
        let _ = LinearFDominance::from_constraints(&cs);
    }

    #[test]
    fn from_vertices_roundtrip() {
        let lin = example_linear();
        let rebuilt = LinearFDominance::from_vertices(2, lin.vertices().to_vec());
        assert!(rebuilt.f_dominates(&[3.0, 4.0], &[9.0, 12.0]));
    }

    proptest! {
        /// Theorem 5's O(d) test must agree with the vertex-based test of
        /// Theorem 2 on random points and random ratio boxes.
        #[test]
        fn ratio_test_agrees_with_vertex_test(
            coords in proptest::collection::vec(
                proptest::collection::vec(0.0f64..10.0, 3), 2),
            l1 in 0.1f64..1.0, span1 in 0.0f64..3.0,
            l2 in 0.1f64..1.0, span2 in 0.0f64..3.0,
        ) {
            let ratio = WeightRatio::new(vec![(l1, l1 + span1), (l2, l2 + span2)]);
            let wr = WeightRatioFDominance::new(ratio.clone());
            let lin = LinearFDominance::from_constraints(&ratio.to_constraint_set());
            let (a, b) = (&coords[0], &coords[1]);
            prop_assert_eq!(wr.f_dominates(a, b), lin.f_dominates(a, b));
            prop_assert_eq!(wr.f_dominates(b, a), lin.f_dominates(b, a));
        }

        /// F-dominance under any constraint set is implied by coordinate-wise
        /// dominance (all scoring functions are monotone), and the vertex test
        /// agrees with the LP reference.
        #[test]
        fn coordinate_dominance_implies_f_dominance(
            a in proptest::collection::vec(0.0f64..10.0, 3),
            delta in proptest::collection::vec(0.0f64..5.0, 3),
            c in 1usize..3,
        ) {
            let b: Vec<f64> = a.iter().zip(&delta).map(|(x, d)| x + d).collect();
            let cs = ConstraintSet::weak_ranking(3, c);
            let lin = LinearFDominance::from_constraints(&cs);
            prop_assert!(lin.f_dominates(&a, &b));
            let lp = LpFDominance::new(cs);
            prop_assert!(lp.f_dominates(&a, &b));
        }

        /// F-dominance is transitive.
        #[test]
        fn f_dominance_transitive(
            pts in proptest::collection::vec(
                proptest::collection::vec(0.0f64..10.0, 3), 3),
        ) {
            let cs = ConstraintSet::weak_ranking(3, 2);
            let lin = LinearFDominance::from_constraints(&cs);
            let (a, b, c) = (&pts[0], &pts[1], &pts[2]);
            if lin.f_dominates(a, b) && lin.f_dominates(b, c) {
                prop_assert!(lin.f_dominates(a, c));
            }
        }
    }
}
