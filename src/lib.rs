//! # arsp — All Restricted Skyline Probabilities on Uncertain Datasets
//!
//! Facade crate for the reproduction of *"Computing All Restricted Skyline
//! Probabilities on Uncertain Datasets"* (ICDE 2024). It re-exports the four
//! underlying crates so that applications can depend on a single crate:
//!
//! * [`geometry`] (`arsp-geometry`) — points, dominance, preference regions,
//!   F-dominance tests,
//! * [`index`] (`arsp-index`) — R-tree, aggregated R-tree, kd-tree, angular
//!   index,
//! * [`data`] (`arsp-data`) — the uncertain data model and workload
//!   generators,
//! * [`core`] (`arsp-core`) — the ARSP algorithms themselves.
//!
//! ## Example
//!
//! The primary API is the session-oriented [`core::engine::ArspEngine`]: it
//! owns the dataset, caches every shared index across queries, and picks the
//! algorithm automatically unless told otherwise.
//!
//! ```
//! use arsp::prelude::*;
//!
//! // Generate a small uncertain dataset (50 objects, ≤ 4 instances each)
//! // and wrap it in a query engine.
//! let engine = ArspEngine::new(SyntheticConfig::small(50, 4, 3, 7).generate());
//!
//! // "The first attribute matters at least as much as the second, which
//! //  matters at least as much as the third."
//! let constraints = ConstraintSet::weak_ranking(3, 2);
//!
//! // Compute the rskyline probability of every instance; ask for the top-5
//! // objects and the work counters while at it.
//! let outcome = engine
//!     .query(&constraints)
//!     .algorithm(QueryAlgorithm::KdttPlus)
//!     .top_k(5)
//!     .collect_stats(true)
//!     .run();
//! assert_eq!(outcome.result().len(), engine.dataset().num_instances());
//! assert_eq!(outcome.top_objects().unwrap().len(), 5);
//! assert!(outcome.counters().unwrap().nodes_visited > 0);
//!
//! // The per-algorithm free functions remain available and agree bitwise.
//! let direct = arsp_kdtt_plus(engine.dataset(), &constraints);
//! assert!(direct.approx_eq(outcome.result(), 0.0));
//! ```

#![deny(unsafe_code)]

pub use arsp_core as core;
pub use arsp_data as data;
pub use arsp_geometry as geometry;
pub use arsp_index as index;

/// Commonly used items from all crates.
pub mod prelude {
    pub use arsp_core::prelude::*;
    pub use arsp_data::{
        paper_running_example, Distribution, MutationOp, SyntheticConfig, UncertainDataset,
    };
    pub use arsp_geometry::constraints::{ConstraintSet, LinearConstraint, WeightRatio};
}
