//! # arsp — All Restricted Skyline Probabilities on Uncertain Datasets
//!
//! Facade crate for the reproduction of *"Computing All Restricted Skyline
//! Probabilities on Uncertain Datasets"* (ICDE 2024). It re-exports the four
//! underlying crates so that applications can depend on a single crate:
//!
//! * [`geometry`] (`arsp-geometry`) — points, dominance, preference regions,
//!   F-dominance tests,
//! * [`index`] (`arsp-index`) — R-tree, aggregated R-tree, kd-tree, angular
//!   index,
//! * [`data`] (`arsp-data`) — the uncertain data model and workload
//!   generators,
//! * [`core`] (`arsp-core`) — the ARSP algorithms themselves.
//!
//! ## Example
//!
//! ```
//! use arsp::prelude::*;
//!
//! // Generate a small uncertain dataset (50 objects, ≤ 4 instances each).
//! let dataset = SyntheticConfig::small(50, 4, 3, 7).generate();
//!
//! // "The first attribute matters at least as much as the second, which
//! //  matters at least as much as the third."
//! let constraints = ConstraintSet::weak_ranking(3, 2);
//!
//! // Compute the rskyline probability of every instance.
//! let result = arsp_kdtt_plus(&dataset, &constraints);
//! assert_eq!(result.len(), dataset.num_instances());
//!
//! // Rank objects by their rskyline probability.
//! let top = result.top_k_objects(&dataset, 5);
//! assert_eq!(top.len(), 5);
//! ```

pub use arsp_core as core;
pub use arsp_data as data;
pub use arsp_geometry as geometry;
pub use arsp_index as index;

/// Commonly used items from all crates.
pub mod prelude {
    pub use arsp_core::prelude::*;
    pub use arsp_data::{paper_running_example, Distribution, SyntheticConfig, UncertainDataset};
    pub use arsp_geometry::constraints::{ConstraintSet, LinearConstraint, WeightRatio};
}
