//! Eclipse queries on a certain product catalogue (§V-D / Fig. 8).
//!
//! When the data is certain (no probabilities), the weight-ratio flavour of
//! the rskyline query is exactly the *eclipse query* of Liu et al. The paper
//! shows its DUAL-S algorithm beats the state-of-the-art QUAD index; this
//! example runs both on a synthetic catalogue and reports the sizes and
//! running times for a range of preference bands.
//!
//! Run with `cargo run --release --example eclipse_catalog`.

use arsp::core::eclipse::{eclipse_dual_s, eclipse_quad, skyline};
use arsp::data::CertainDataset;
use arsp::prelude::*;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

fn main() {
    // A catalogue of 2^14 products with three normalised cost-like attributes
    // (price, delivery time, weight) — the Fig. 8 default setting.
    let n = 1 << 14;
    let dim = 3;
    let mut rng = ChaCha8Rng::seed_from_u64(88);
    let mut catalog = CertainDataset::new(dim);
    for _ in 0..n {
        catalog.push_point((0..dim).map(|_| rng.gen_range(0.0..1.0)).collect());
    }

    let sky = skyline(&catalog);
    println!(
        "Catalogue: {n} products, {dim} attributes; skyline size = {}",
        sky.len()
    );

    println!(
        "\n{:<16} {:>10} {:>14} {:>14}",
        "ratio range q", "|eclipse|", "QUAD", "DUAL-S"
    );
    for (l, h) in arsp::data::constraints_gen::fig8_ratio_ranges() {
        let ratio = WeightRatio::uniform(dim, l, h);

        let t = Instant::now();
        let quad = eclipse_quad(&catalog, &ratio);
        let quad_time = t.elapsed();

        let t = Instant::now();
        let dual = eclipse_dual_s(&catalog, &ratio);
        let dual_time = t.elapsed();

        assert_eq!(quad, dual, "QUAD and DUAL-S must agree");
        println!(
            "[{l:>5.2}, {h:>5.2}]  {:>10} {:>14?} {:>14?}",
            dual.len(),
            quad_time,
            dual_time
        );
    }

    println!(
        "\nDUAL-S answers each skyline point with a single early-terminating
existence query against a kd-tree over the skyline, while the QUAD-style
baseline pays a quadratic number of pairwise eclipse-dominance tests —
the same asymmetry Fig. 8 of the paper reports."
    );

    // ------------------------------------------------------------------
    // Cross-check against the ArspEngine: on certain data (p = 1) the
    // weight-ratio rskyline probability of a product is 1 exactly when it is
    // in the eclipse set, so the probabilistic engine and the eclipse
    // algorithms must name the same products.
    // ------------------------------------------------------------------
    let subset = 2_048;
    let mut small_catalog = CertainDataset::new(dim);
    let mut uncertain = UncertainDataset::new(dim);
    for point in catalog.points().iter().take(subset) {
        small_catalog.push_point(point.clone());
        uncertain.push_object(vec![(point.clone(), 1.0)]);
    }
    let engine = ArspEngine::new(uncertain);
    let ratio = WeightRatio::uniform(dim, 0.36, 2.75);
    let outcome = engine.ratio_query(&ratio).run();
    let via_engine: Vec<usize> = outcome
        .iter_probs()
        .filter(|&(_, _, p)| p > 0.5)
        .map(|(object, _, _)| object)
        .collect();
    let mut via_eclipse = eclipse_dual_s(&small_catalog, &ratio);
    via_eclipse.sort_unstable();
    assert_eq!(via_engine, via_eclipse);
    println!(
        "\nEngine cross-check on {} certain products: {} picked {} products — exactly
the eclipse set of DUAL-S.",
        subset,
        outcome.algorithm().name(),
        via_engine.len()
    );
}
