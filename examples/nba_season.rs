//! The effectiveness study of §V-B, rebuilt on the simulated NBA-like
//! dataset: Table I (top players by rskyline probability), Table II (top
//! players by skyline probability) and the Fig. 4 style score summaries.
//!
//! Players are uncertain objects, every game log is an instance with
//! probability `1/|games|`, and the analyst's preference is the weak ranking
//! `ω_rebound ≥ ω_assist ≥ ω_points` used in the paper.
//!
//! Run with `cargo run --release --example nba_season`.

use arsp::core::effectiveness::{rskyline_ranking, score_summaries, skyline_ranking};
use arsp::data::real;
use arsp::geometry::polytope::preference_region_vertices;
use arsp::prelude::*;

fn main() {
    // 150 players, 60 games each, 3 metrics (stand-ins for rebounds, assists,
    // points; see DESIGN.md for the real-data substitution). The engine owns
    // the season and serves every analysis query below.
    let engine = ArspEngine::new(real::nba_like(150, 60, 3, 2021));
    let dataset = engine.dataset();
    let constraints = ConstraintSet::weak_ranking(3, 2);

    let outcome = engine.query(&constraints).collect_stats(true).run();
    println!(
        "ARSP via {} in {:?} ({} dominance tests)\n",
        outcome.algorithm().name(),
        outcome.total_time(),
        outcome.counters().map_or(0, |c| c.total())
    );
    let arsp = outcome.result();

    println!("=== Table I analogue: top-14 players by rskyline probability ===");
    println!("(players marked * are in the aggregated rskyline)\n");
    let table1 = rskyline_ranking(dataset, arsp, &constraints, 14);
    for row in &table1 {
        println!(
            "  {:>2}. {} {:38} Pr_rsky = {:.3}",
            row.rank,
            if row.in_aggregated_rskyline { "*" } else { " " },
            row.label.as_deref().unwrap_or("?"),
            row.probability
        );
    }

    println!("\n=== Table II analogue: top-14 players by skyline probability ===\n");
    let table2 = skyline_ranking(dataset, &constraints, 14);
    for row in &table2 {
        println!(
            "  {:>2}. {:40} Pr_sky = {:.3}",
            row.rank,
            row.label.as_deref().unwrap_or("?"),
            row.probability
        );
    }

    // The paper's observations, checked programmatically:
    // 1. rskyline probabilities are never larger than skyline probabilities,
    let asp = skyline_probabilities(dataset);
    let max_violation = (0..dataset.num_instances())
        .map(|id| arsp.instance_prob(id) - asp.instance_prob(id))
        .fold(f64::MIN, f64::max);
    println!("\nLargest Pr_rsky − Pr_sky over all instances: {max_violation:.2e} (never positive)");

    // 2. the two rankings overlap on the consistently strong players but are
    //    not identical (the paper's Trae Young example).
    let t1: Vec<usize> = table1.iter().map(|r| r.object).collect();
    let t2: Vec<usize> = table2.iter().map(|r| r.object).collect();
    let overlap = t1.iter().filter(|o| t2.contains(o)).count();
    println!("Overlap between the two top-14 rankings: {overlap} players");

    // Fig. 4 analogue: score summaries of the top player under each vertex of
    // the preference region.
    let vertices = preference_region_vertices(&constraints);
    let star = table1[0].object;
    println!(
        "\n=== Fig. 4 analogue: score distribution of {} under each vertex ===",
        dataset.object(star).label.as_deref().unwrap_or("?")
    );
    for (omega, summary) in vertices
        .iter()
        .zip(score_summaries(dataset, star, &vertices))
    {
        println!(
            "  ω = {:?}: min {:.3}  q1 {:.3}  median {:.3}  q3 {:.3}  max {:.3}  (mean {:.3})",
            omega
                .iter()
                .map(|w| (w * 100.0).round() / 100.0)
                .collect::<Vec<_>>(),
            summary.min,
            summary.q1,
            summary.median,
            summary.q3,
            summary.max,
            summary.mean
        );
    }
}
