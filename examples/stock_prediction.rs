//! The prediction-service scenario from the paper's introduction — as a
//! **stream of alerts**.
//!
//! A stock-prediction service emits, for every stock, a set of predicted
//! (price, growth-rate) outcomes each with a confidence value — an uncertain
//! dataset. But a real feed never stands still: every tick batch revises
//! scenario confidences and price paths, new listings appear, and delisted
//! tickers drop out. The analyst still wants, between batches, the stocks
//! likely to be attractive under any weighting of price vs growth within a
//! factor-of-two band: `F = {ω1·P + ω2·GR | 0.5·ω2 ≤ ω1 ≤ 2·ω2}`.
//!
//! Instead of re-running the query after every tick, the analyst registers
//! two **standing queries** once ([`StandingSpec`] on the
//! [`DynamicArspEngine`]) and then only consumes change-sets: after each
//! mutation batch, [`DynamicArspEngine::refresh_standing`] pushes the
//! `(handle, old_prob, new_prob)` pairs that actually moved — computed by
//! replaying the delta against the engine's cached accounting, not by
//! rescanning the bulk — tagged with a gapless `result_version` so a missed
//! batch is provable. Replaying the feed client-side reconstructs the full
//! result, and the final answer is checked — exactly, bit for bit — against
//! a cold engine rebuilt from scratch: the standing subsystem's core
//! guarantee.
//!
//! Run with `cargo run --release --example stock_prediction`.

use std::collections::BTreeMap;

use arsp::core::dynamic::DynamicArspEngine;
use arsp::prelude::*;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// One tracked stock: its store object id and the handles of its live
/// prediction scenarios.
struct Stock {
    object: usize,
    scenarios: Vec<InstanceHandle>,
}

fn scenario_coords(rng: &mut ChaCha8Rng, quality: f64, volatility: f64) -> Vec<f64> {
    (0..2)
        .map(|_| (1.0 - quality + rng.gen_range(-volatility..volatility)).clamp(0.0, 1.0))
        .collect()
}

/// Replays a drained change-set into the client's mirror of the maintained
/// result, checking the feed protocol on the way: gapless `result_version`
/// and an `old_prob` that matches the mirror bitwise.
fn replay(
    mirror: &mut BTreeMap<InstanceHandle, f64>,
    next_result_version: &mut u64,
    batches: &[ChangeBatch],
) -> usize {
    let mut moved = 0;
    for batch in batches {
        assert_eq!(
            batch.result_version, *next_result_version,
            "the feed skipped a notification"
        );
        *next_result_version += 1;
        for pair in &batch.changes {
            let previous = match pair.new_prob {
                Some(new_prob) => mirror.insert(pair.handle, new_prob),
                None => mirror.remove(&pair.handle),
            };
            assert_eq!(
                previous.map(f64::to_bits),
                pair.old_prob.map(f64::to_bits),
                "old_prob must match the replayed state bitwise"
            );
            moved += 1;
        }
    }
    moved
}

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(2024);

    // ---- initial feed: 300 stocks, 3–5 scenarios each -------------------
    let mut engine = DynamicArspEngine::new(2);
    let mut stocks: Vec<Stock> = Vec::new();
    for ticker in 0..300 {
        let quality: f64 = rng.gen_range(0.0..1.0);
        let volatility: f64 = rng.gen_range(0.02..0.3);
        let scenarios = rng.gen_range(3..=5);
        let confidence = rng.gen_range(0.6..0.9) / scenarios as f64;
        let instances: Vec<(Vec<f64>, f64)> = (0..scenarios)
            .map(|_| (scenario_coords(&mut rng, quality, volatility), confidence))
            .collect();
        let object = engine.insert_object(Some(format!("STK{ticker:04}")), instances);
        let handles = engine
            .store()
            .object_rows(object)
            .iter()
            .map(|&r| engine.store().handle_of_row(r as usize))
            .collect();
        stocks.push(Stock {
            object,
            scenarios: handles,
        });
    }
    println!(
        "Prediction feed: {} stocks, {} scenarios (version {})",
        engine.store().num_live_objects(),
        engine.store().num_live_instances(),
        engine.version()
    );

    let ratio = WeightRatio::uniform(2, 0.5, 2.0);
    let constraints = ratio.to_constraint_set();

    // ---- register the alerts ONCE ----------------------------------------
    // The band alert watches the factor-of-two preference band (served by
    // the DUAL forest); the scan alert pins LOOP on the equivalent linear
    // constraints, the one configuration maintained incrementally through
    // the dirty-set narrowing pass. In 2-d a wide band means wide dominance
    // windows, so the alert raises its fallback threshold above the default:
    // recompute up to half the population before preferring a full re-query.
    let band_alert = engine.subscribe(StandingSpec::ratio(&ratio));
    let scan_alert = engine.subscribe(
        StandingSpec::constraints(&constraints)
            .algorithm(QueryAlgorithm::Loop)
            .max_dirty_fraction(0.5),
    );

    // The establishing batch carries the full initial result (old_prob is
    // None for every pair: everything is newly live to a fresh subscriber).
    let mut band_mirror = BTreeMap::new();
    let mut band_rv = 1;
    replay(&mut band_mirror, &mut band_rv, &band_alert.drain());
    let mut scan_mirror = BTreeMap::new();
    let mut scan_rv = 1;
    replay(&mut scan_mirror, &mut scan_rv, &scan_alert.drain());
    println!(
        "Alerts registered: band alert tracks {} scenarios, scan alert {} (result version 1)",
        band_mirror.len(),
        scan_mirror.len()
    );

    // ---- the streaming loop: mutate a batch, consume the change-sets -----
    let mut next_ticker = stocks.len();
    for batch in 0..6 {
        // A light tick: a couple of scenarios get revised confidences /
        // price paths — the regime the dirty-set narrowing pass is built
        // for. Every third batch the universe itself moves (one IPO, one
        // delisting), which dirties most dominance windows and makes the
        // cost model fall back to a full re-query for that tick.
        let revisions = 2;
        for _ in 0..revisions {
            let stock = &stocks[rng.gen_range(0..stocks.len())];
            if stock.scenarios.is_empty() || engine.store().is_retired(stock.object) {
                continue;
            }
            let handle = stock.scenarios[rng.gen_range(0..stock.scenarios.len())];
            let Some(row) = engine.store().row_of(handle) else {
                continue;
            };
            let drift: f64 = rng.gen_range(-0.05..0.05);
            let coords: Vec<f64> = engine
                .store()
                .coords_of(row)
                .iter()
                .map(|c| (c + drift).clamp(0.0, 1.0))
                .collect();
            let old_prob = engine.store().prob(row);
            let slack = 1.0 - (engine.store().live_total_prob(stock.object) - old_prob);
            let prob = (old_prob * rng.gen_range(0.6..1.3)).clamp(1e-3, slack.max(1e-3));
            engine.update_instance(handle, &coords, prob);
        }

        if batch % 3 == 2 {
            let quality: f64 = rng.gen_range(0.3..1.0);
            let instances: Vec<(Vec<f64>, f64)> = (0..3)
                .map(|_| (scenario_coords(&mut rng, quality, 0.1), 0.25))
                .collect();
            let object = engine.insert_object(Some(format!("STK{next_ticker:04}")), instances);
            let handles = engine
                .store()
                .object_rows(object)
                .iter()
                .map(|&r| engine.store().handle_of_row(r as usize))
                .collect();
            stocks.push(Stock {
                object,
                scenarios: handles,
            });
            next_ticker += 1;
            loop {
                let victim = rng.gen_range(0..stocks.len());
                if !engine.store().is_retired(stocks[victim].object)
                    && !engine.store().object_rows(stocks[victim].object).is_empty()
                {
                    engine.retire_object(stocks[victim].object);
                    break;
                }
            }
        }

        // One refresh maintains every subscription against the pending
        // delta; the analyst only touches what changed.
        let t = std::time::Instant::now();
        engine.refresh_standing();
        let refresh_time = t.elapsed();
        let band_batches = band_alert.drain();
        let scan_batches = scan_alert.drain();

        // The biggest mover this tick, from the change-set alone.
        let top_mover = band_batches
            .iter()
            .flat_map(|b| &b.changes)
            .max_by(|a, b| {
                let swing =
                    |p: &ChangedPair| (p.new_prob.unwrap_or(0.0) - p.old_prob.unwrap_or(0.0)).abs();
                swing(a).total_cmp(&swing(b))
            })
            .map(|pair| {
                let swing = pair.new_prob.unwrap_or(0.0) - pair.old_prob.unwrap_or(0.0);
                let label = engine
                    .store()
                    .row_of(pair.handle)
                    .map(|row| engine.store().object_of(row))
                    .and_then(|object| engine.store().object_label(object))
                    .unwrap_or("<delisted>")
                    .to_string();
                (label, swing)
            });

        let band_moved = replay(&mut band_mirror, &mut band_rv, &band_batches);
        let scan_moved = replay(&mut scan_mirror, &mut scan_rv, &scan_batches);
        let mover = top_mover
            .map(|(label, swing)| format!("{label} {swing:+.4}"))
            .unwrap_or_else(|| "-".to_string());
        println!(
            "batch {batch}: version {:>4}  band Δ {:>3} pairs, scan Δ {:>3} pairs \
             (refresh {refresh_time:?})  top mover {mover}",
            engine.version(),
            band_moved,
            scan_moved,
        );
    }

    // ---- reporting --------------------------------------------------------
    let snapshot = engine.snapshot_dataset();
    let outcome = engine.ratio_query(&ratio).run();
    println!("\nTop-10 stocks by probability of being an undominated pick:");
    for (object, prob) in outcome.result().top_k_objects(&snapshot, 10) {
        println!(
            "  {}  Pr_rsky = {prob:.4}",
            snapshot.object(object).label.as_deref().unwrap_or("?")
        );
    }

    let stats = engine.cache_stats();
    println!(
        "\nSession counters: {} notifications delivered, {} dirty instances \
         scanned, {} full-requery fallbacks, {} delta rows fused, {} merges",
        stats.notifications_delivered,
        stats.dirty_instances_scanned,
        stats.standing_full_fallbacks,
        stats.delta_rows_scanned,
        stats.merges_performed
    );

    // ---- the standing subsystem's core guarantee, demonstrated -----------
    // The result reconstructed purely from the change-set feed equals a cold
    // engine rebuilt from scratch — bit for bit, for both subscriptions.
    let cold = ArspEngine::new(snapshot);
    for (name, mirror, probs) in [
        (
            "band",
            &band_mirror,
            cold.ratio_query(&ratio).run().result().probs().to_vec(),
        ),
        (
            "scan",
            &scan_mirror,
            cold.query(&constraints)
                .algorithm(QueryAlgorithm::Loop)
                .run()
                .result()
                .probs()
                .to_vec(),
        ),
    ] {
        let expected: BTreeMap<InstanceHandle, f64> = engine
            .store()
            .canonical_rows()
            .map(|row| engine.store().handle_of_row(row))
            .zip(probs)
            .collect();
        assert_eq!(
            mirror.len(),
            expected.len(),
            "{name}: replayed feed must cover every live scenario"
        );
        for (handle, prob) in mirror {
            assert_eq!(
                prob.to_bits(),
                expected[handle].to_bits(),
                "{name}: the replayed feed must equal a cold rebuild bitwise"
            );
        }
    }
    println!("\nReplayed change-set feed == cold rebuild, bit for bit. ✔");
}
