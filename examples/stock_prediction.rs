//! The prediction-service scenario from the paper's introduction — as a
//! **stream**.
//!
//! A stock-prediction service emits, for every stock, a set of predicted
//! (price, growth-rate) outcomes each with a confidence value — an uncertain
//! dataset. But a real feed never stands still: every tick batch revises
//! scenario confidences and price paths, new listings appear, and delisted
//! tickers drop out. The analyst still wants, between batches, the stocks
//! likely to be attractive under any weighting of price vs growth within a
//! factor-of-two band: `F = {ω1·P + ω2·GR | 0.5·ω2 ≤ ω1 ≤ 2·ω2}`.
//!
//! This example drives the scenario through one [`DynamicArspEngine`]
//! session: ticks mutate the versioned store in place (stable
//! [`InstanceHandle`]s track each scenario across revisions and compactions),
//! queries run between batches on the engine's delta-merged caches, and the
//! final answer is checked — exactly, bit for bit — against a cold engine
//! rebuilt from scratch, which is the dynamic subsystem's core guarantee.
//!
//! Run with `cargo run --release --example stock_prediction`.

use arsp::core::dynamic::DynamicArspEngine;
use arsp::prelude::*;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// One tracked stock: its store object id and the handles of its live
/// prediction scenarios.
struct Stock {
    object: usize,
    scenarios: Vec<InstanceHandle>,
}

fn scenario_coords(rng: &mut ChaCha8Rng, quality: f64, volatility: f64) -> Vec<f64> {
    (0..2)
        .map(|_| (1.0 - quality + rng.gen_range(-volatility..volatility)).clamp(0.0, 1.0))
        .collect()
}

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(2024);

    // ---- initial feed: 300 stocks, 3–5 scenarios each -------------------
    let mut engine = DynamicArspEngine::new(2);
    let mut stocks: Vec<Stock> = Vec::new();
    for ticker in 0..300 {
        let quality: f64 = rng.gen_range(0.0..1.0);
        let volatility: f64 = rng.gen_range(0.02..0.3);
        let scenarios = rng.gen_range(3..=5);
        let confidence = rng.gen_range(0.6..0.9) / scenarios as f64;
        let instances: Vec<(Vec<f64>, f64)> = (0..scenarios)
            .map(|_| (scenario_coords(&mut rng, quality, volatility), confidence))
            .collect();
        let object = engine.insert_object(Some(format!("STK{ticker:04}")), instances);
        let handles = engine
            .store()
            .object_rows(object)
            .iter()
            .map(|&r| engine.store().handle_of_row(r as usize))
            .collect();
        stocks.push(Stock {
            object,
            scenarios: handles,
        });
    }
    println!(
        "Prediction feed: {} stocks, {} scenarios (version {})",
        engine.store().num_live_objects(),
        engine.store().num_live_instances(),
        engine.version()
    );

    let ratio = WeightRatio::uniform(2, 0.5, 2.0);
    let constraints = ratio.to_constraint_set();

    // ---- the streaming loop: mutate a batch, query between batches -------
    let mut next_ticker = stocks.len();
    for batch in 0..6 {
        // ~5 % of all scenarios get revised confidences / price paths.
        let revisions = engine.store().num_live_instances() / 20;
        for _ in 0..revisions {
            let stock = &stocks[rng.gen_range(0..stocks.len())];
            if stock.scenarios.is_empty() || engine.store().is_retired(stock.object) {
                continue;
            }
            let handle = stock.scenarios[rng.gen_range(0..stock.scenarios.len())];
            let Some(row) = engine.store().row_of(handle) else {
                continue;
            };
            let drift: f64 = rng.gen_range(-0.05..0.05);
            let coords: Vec<f64> = engine
                .store()
                .coords_of(row)
                .iter()
                .map(|c| (c + drift).clamp(0.0, 1.0))
                .collect();
            let old_prob = engine.store().prob(row);
            let slack = 1.0 - (engine.store().live_total_prob(stock.object) - old_prob);
            let prob = (old_prob * rng.gen_range(0.6..1.3)).clamp(1e-3, slack.max(1e-3));
            engine.update_instance(handle, &coords, prob);
        }

        // One IPO and one delisting per batch keep the universe moving.
        let quality: f64 = rng.gen_range(0.3..1.0);
        let instances: Vec<(Vec<f64>, f64)> = (0..3)
            .map(|_| (scenario_coords(&mut rng, quality, 0.1), 0.25))
            .collect();
        let object = engine.insert_object(Some(format!("STK{next_ticker:04}")), instances);
        let handles = engine
            .store()
            .object_rows(object)
            .iter()
            .map(|&r| engine.store().handle_of_row(r as usize))
            .collect();
        stocks.push(Stock {
            object,
            scenarios: handles,
        });
        next_ticker += 1;
        loop {
            let victim = rng.gen_range(0..stocks.len());
            if !engine.store().is_retired(stocks[victim].object)
                && !engine.store().object_rows(stocks[victim].object).is_empty()
            {
                engine.retire_object(stocks[victim].object);
                break;
            }
        }

        // Queries between batches: the ratio query auto-selects DUAL (served
        // by the incrementally folded per-object forest), the general
        // constraints run the delta-merge LOOP path / patched kd caches.
        let delta_before = engine.store().delta_rows();
        let t = std::time::Instant::now();
        let dual = engine.ratio_query(&ratio).run();
        let dual_time = t.elapsed();
        // LOOP runs first among the general algorithms: it fuses the pending
        // delta into its scan without materialising the new snapshot …
        let t = std::time::Instant::now();
        let scan = engine
            .query(&constraints)
            .algorithm(QueryAlgorithm::Loop)
            .run();
        let loop_time = t.elapsed();
        // … while KDTT+ advances the snapshot (patching the cached score
        // matrix and flat store) and traverses as usual.
        let t = std::time::Instant::now();
        let kdtt = engine
            .query(&constraints)
            .algorithm(QueryAlgorithm::KdttPlus)
            .run();
        let kdtt_time = t.elapsed();
        // Different algorithms, same answer within float tolerance (bitwise
        // equality is the dynamic-vs-cold contract *per* algorithm, checked
        // below — not a cross-algorithm property).
        assert!(scan.result().approx_eq(kdtt.result(), 1e-9));
        assert!(dual.result().approx_eq(kdtt.result(), 1e-9));
        println!(
            "batch {batch}: version {:>4}, delta {:>3} rows  |ARSP| = {:<4} \
             (DUAL {dual_time:?}, LOOP {loop_time:?}, KDTT+ {kdtt_time:?})",
            engine.version(),
            delta_before,
            dual.result_size(),
        );
    }

    // ---- reporting --------------------------------------------------------
    let snapshot = engine.snapshot_dataset();
    let outcome = engine.ratio_query(&ratio).run();
    println!("\nTop-10 stocks by probability of being an undominated pick:");
    for (object, prob) in outcome.result().top_k_objects(&snapshot, 10) {
        println!(
            "  {}  Pr_rsky = {prob:.4}",
            snapshot.object(object).label.as_deref().unwrap_or("?")
        );
    }

    let stats = engine.cache_stats();
    println!(
        "\nSession counters: {} hits / {} misses, {} delta rows fused, \
         {} merges, {} invalidations",
        stats.hits,
        stats.misses,
        stats.delta_rows_scanned,
        stats.merges_performed,
        stats.caches_invalidated
    );

    // ---- the dynamic subsystem's core guarantee, demonstrated ------------
    let cold = ArspEngine::new(snapshot);
    let reference = cold.ratio_query(&ratio).run();
    assert_eq!(
        reference.result().probs(),
        outcome.result().probs(),
        "the incrementally updated engine must equal a cold rebuild bitwise"
    );
    for algorithm in [QueryAlgorithm::Loop, QueryAlgorithm::KdttPlus] {
        let warm = engine.query(&constraints).algorithm(algorithm).run();
        let fresh = cold.query(&constraints).algorithm(algorithm).run();
        assert_eq!(warm.result().probs(), fresh.result().probs());
    }
    println!("\nIncremental engine == cold rebuild, bit for bit. ✔");
}
