//! The prediction-service scenario from the paper's introduction.
//!
//! A stock-prediction service emits, for every stock, a set of predicted
//! (price, growth-rate) outcomes each with a confidence value — an uncertain
//! dataset. The analyst wants stocks that are likely to be attractive under
//! *any* weighting of price vs growth within a factor-of-two band:
//! `F = {ω1·P + ω2·GR | 0.5·ω2 ≤ ω1 ≤ 2·ω2}` — weight ratio constraints,
//! the case the paper's §IV targets.
//!
//! The example compares the general algorithms (KDTT+/B&B) with the
//! weight-ratio specific DUAL algorithm and the d = 2 DUAL-MS structure whose
//! preprocessing can be reused across different ratio bands.
//!
//! Run with `cargo run --release --example stock_prediction`.

use arsp::core::DualMs2d;
use arsp::prelude::*;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

fn main() {
    // Build a synthetic prediction feed: 400 stocks, 3–6 scenario predictions
    // each. Attributes are (normalised price, 1 − normalised growth rate) so
    // that lower is better in both dimensions.
    let mut rng = ChaCha8Rng::seed_from_u64(2024);
    let mut dataset = UncertainDataset::new(2);
    for stock in 0..400 {
        let quality: f64 = rng.gen_range(0.0..1.0);
        let volatility: f64 = rng.gen_range(0.02..0.3);
        let scenarios = rng.gen_range(3..=6);
        // Confidences sum to at most 1; the remaining mass models "no usable
        // prediction".
        let confidence = rng.gen_range(0.7..1.0) / scenarios as f64;
        let instances = (0..scenarios)
            .map(|_| {
                let price =
                    (1.0 - quality + rng.gen_range(-volatility..volatility)).clamp(0.0, 1.0);
                let growth =
                    (1.0 - quality + rng.gen_range(-volatility..volatility)).clamp(0.0, 1.0);
                (vec![price, growth], confidence)
            })
            .collect();
        dataset.push_labeled_object(Some(format!("STK{stock:04}")), instances);
    }
    println!(
        "Prediction feed: {} stocks, {} predicted scenarios",
        dataset.num_objects(),
        dataset.num_instances()
    );

    let ratio = WeightRatio::uniform(2, 0.5, 2.0);
    let constraints = ratio.to_constraint_set();

    // General-purpose algorithms.
    let t = Instant::now();
    let kdtt = arsp_kdtt_plus(&dataset, &constraints);
    println!("KDTT+          : {:?}", t.elapsed());
    let t = Instant::now();
    let bnb = arsp_bnb(&dataset, &constraints);
    println!("B&B            : {:?}", t.elapsed());

    // Weight-ratio specific algorithms.
    let t = Instant::now();
    let dual = arsp_dual(&dataset, &ratio);
    println!("DUAL           : {:?}", t.elapsed());
    let t = Instant::now();
    let prep = DualMs2d::preprocess(&dataset);
    let prep_time = t.elapsed();
    let t = Instant::now();
    let dual_ms = prep.query(0.5, 2.0);
    println!(
        "DUAL-MS        : preprocessing {:?} ({} stored entries), query {:?}",
        prep_time,
        prep.stored_entries(),
        t.elapsed()
    );

    assert!(kdtt.approx_eq(&bnb, 1e-8));
    assert!(kdtt.approx_eq(&dual, 1e-8));
    assert!(kdtt.approx_eq(&dual_ms, 1e-8));
    println!("All four algorithms agree.\n");

    println!("Top-10 stocks by probability of being an undominated pick:");
    for (object, prob) in kdtt.top_k_objects(&dataset, 10) {
        println!(
            "  {}  Pr_rsky = {prob:.4}",
            dataset.object(object).label.as_deref().unwrap_or("?")
        );
    }

    // The DUAL-MS preprocessing is reusable across preference bands: an
    // analyst can narrow or widen the band without re-reading the data.
    println!("\nReusing the DUAL-MS structure for different preference bands:");
    for (l, h) in [(0.5, 2.0), (0.8, 1.25), (0.2, 5.0)] {
        let t = Instant::now();
        let result = prep.query(l, h);
        println!(
            "  band [{l:.2}, {h:.2}]: |ARSP| = {:4} non-zero stocks  (query took {:?})",
            result.result_size(),
            t.elapsed()
        );
    }
}
