//! The prediction-service scenario from the paper's introduction.
//!
//! A stock-prediction service emits, for every stock, a set of predicted
//! (price, growth-rate) outcomes each with a confidence value — an uncertain
//! dataset. The analyst wants stocks that are likely to be attractive under
//! *any* weighting of price vs growth within a factor-of-two band:
//! `F = {ω1·P + ω2·GR | 0.5·ω2 ≤ ω1 ≤ 2·ω2}` — weight ratio constraints,
//! the case the paper's §IV targets.
//!
//! The example drives everything through one [`ArspEngine`] session: the
//! ratio query auto-selects DUAL, the forced general algorithms (KDTT+/B&B)
//! agree bitwise with their free-function twins, and a whole band sweep runs
//! as one cached batch. The d = 2 DUAL-MS structure with its reusable
//! preprocessing is shown for comparison.
//!
//! Run with `cargo run --release --example stock_prediction`.

use arsp::core::DualMs2d;
use arsp::prelude::*;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

fn main() {
    // Build a synthetic prediction feed: 400 stocks, 3–6 scenario predictions
    // each. Attributes are (normalised price, 1 − normalised growth rate) so
    // that lower is better in both dimensions.
    let mut rng = ChaCha8Rng::seed_from_u64(2024);
    let mut dataset = UncertainDataset::new(2);
    for stock in 0..400 {
        let quality: f64 = rng.gen_range(0.0..1.0);
        let volatility: f64 = rng.gen_range(0.02..0.3);
        let scenarios = rng.gen_range(3..=6);
        // Confidences sum to at most 1; the remaining mass models "no usable
        // prediction".
        let confidence = rng.gen_range(0.7..1.0) / scenarios as f64;
        let instances = (0..scenarios)
            .map(|_| {
                let price =
                    (1.0 - quality + rng.gen_range(-volatility..volatility)).clamp(0.0, 1.0);
                let growth =
                    (1.0 - quality + rng.gen_range(-volatility..volatility)).clamp(0.0, 1.0);
                (vec![price, growth], confidence)
            })
            .collect();
        dataset.push_labeled_object(Some(format!("STK{stock:04}")), instances);
    }
    let engine = ArspEngine::new(dataset);
    println!(
        "Prediction feed: {} stocks, {} predicted scenarios",
        engine.dataset().num_objects(),
        engine.dataset().num_instances()
    );

    let ratio = WeightRatio::uniform(2, 0.5, 2.0);
    let constraints = ratio.to_constraint_set();

    // The ratio query auto-selects DUAL (§IV); general algorithms are forced
    // through the same session for comparison.
    let dual = engine.ratio_query(&ratio).run();
    println!(
        "{:<15}: {:?} ({})",
        dual.algorithm().name(),
        dual.total_time(),
        dual.selection_reason().unwrap_or("forced")
    );
    for algorithm in [QueryAlgorithm::KdttPlus, QueryAlgorithm::BranchAndBound] {
        let outcome = engine.query(&constraints).algorithm(algorithm).run();
        println!(
            "{:<15}: {:?} (build {:?} + run {:?})",
            outcome.algorithm().name(),
            outcome.total_time(),
            outcome.build_time(),
            outcome.run_time()
        );
        assert!(dual.result().approx_eq(outcome.result(), 1e-7));
    }

    // The d = 2 specialisation: quadratic preprocessing, then very fast
    // queries for any band.
    let t = std::time::Instant::now();
    let prep = DualMs2d::preprocess(engine.dataset());
    let prep_time = t.elapsed();
    let t = std::time::Instant::now();
    let dual_ms = prep.query(0.5, 2.0);
    println!(
        "{:<15}: preprocessing {:?} ({} stored entries), query {:?}",
        "DUAL-MS",
        prep_time,
        prep.stored_entries(),
        t.elapsed()
    );
    assert!(dual.result().approx_eq(&dual_ms, 1e-8));
    println!("All algorithms agree.\n");

    println!("Top-10 stocks by probability of being an undominated pick:");
    let top = engine.query(&constraints).top_k(10).run();
    for &(object, prob) in top.top_objects().unwrap() {
        println!(
            "  {}  Pr_rsky = {prob:.4}",
            engine
                .dataset()
                .object(object)
                .label
                .as_deref()
                .unwrap_or("?")
        );
    }

    // An analyst sweep over preference bands, evaluated as one batch: the
    // engine shares every cached structure across the sweep and fans out
    // across queries.
    let bands = [(0.5, 2.0), (0.8, 1.25), (0.2, 5.0)];
    let sweep: Vec<ConstraintSet> = bands
        .iter()
        .map(|&(l, h)| WeightRatio::uniform(2, l, h).to_constraint_set())
        .collect();
    let t = std::time::Instant::now();
    let outcomes = engine.run_batch(&sweep);
    let batch_time = t.elapsed();
    println!("\nBand sweep as one batch ({batch_time:?} total):");
    for (&(l, h), outcome) in bands.iter().zip(&outcomes) {
        println!(
            "  band [{l:.2}, {h:.2}]: |ARSP| = {:4} non-zero stocks  ({} in {:?})",
            outcome.result_size(),
            outcome.algorithm().name(),
            outcome.total_time()
        );
    }

    // The DUAL-MS preprocessing is just as reusable across bands.
    println!("\nReusing the DUAL-MS structure for the same bands:");
    for &(l, h) in &bands {
        let t = std::time::Instant::now();
        let result = prep.query(l, h);
        println!(
            "  band [{l:.2}, {h:.2}]: |ARSP| = {:4} non-zero stocks  (query took {:?})",
            result.result_size(),
            t.elapsed()
        );
    }
}
