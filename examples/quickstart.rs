//! Quickstart: compute all restricted skyline probabilities on the paper's
//! running example and on a small synthetic dataset, through the
//! session-oriented [`ArspEngine`] API.
//!
//! Run with `cargo run --release --example quickstart`.

use arsp::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // 1. The paper's running example (Fig. 1 / Example 1): four uncertain
    //    objects with ten instances in two dimensions, and the preference
    //    "attribute 1 is between half and twice as important as attribute 2".
    // ------------------------------------------------------------------
    let engine = ArspEngine::new(paper_running_example());
    let ratio = WeightRatio::uniform(2, 0.5, 2.0);
    let constraints = ratio.to_constraint_set();

    // `Auto` picks the algorithm (LOOP here — ten instances are tiny) and the
    // outcome reports the decision.
    let outcome = engine.query(&constraints).run();
    println!(
        "Paper running example ({} objects, {} instances)",
        engine.dataset().num_objects(),
        engine.dataset().num_instances()
    );
    println!(
        "  algorithm: {} (auto-selected: {})",
        outcome.algorithm().name(),
        outcome.selection_reason().unwrap_or("forced")
    );
    for (object, instance, prob) in outcome.iter_probs() {
        let inst = engine.dataset().instance(instance);
        println!(
            "  instance t{},{}  at {:?}  p = {:.3}  Pr_rsky = {prob:.4}",
            object + 1,
            engine
                .dataset()
                .object(object)
                .instance_ids
                .iter()
                .position(|&id| id == instance)
                .unwrap()
                + 1,
            inst.coords,
            inst.prob,
        );
    }
    println!(
        "  Pr_rsky(T1) = {:.4} (the paper reports 2/9 ≈ 0.2222)",
        outcome.object_prob(0)
    );

    // Every algorithm agrees; ratio queries unlock the DUAL algorithm.
    let dual = engine.ratio_query(&ratio).run();
    let bnb = engine
        .query(&constraints)
        .algorithm(QueryAlgorithm::BranchAndBound)
        .run();
    assert_eq!(dual.algorithm().name(), "DUAL");
    assert!(outcome.result().approx_eq(dual.result(), 1e-9));
    assert!(outcome.result().approx_eq(bnb.result(), 1e-9));
    println!(
        "  {} (auto), B&B and DUAL agree to 1e-9.\n",
        outcome.algorithm().name()
    );

    // ------------------------------------------------------------------
    // 2. A synthetic workload: 2,000 objects, up to 8 instances each, three
    //    attributes, weak-ranking preferences. One engine serves repeated
    //    queries; the second run of the same constraints skips every index
    //    build.
    // ------------------------------------------------------------------
    let engine = ArspEngine::new(
        SyntheticConfig {
            num_objects: 2_000,
            max_instances: 8,
            dim: 3,
            region_length: 0.2,
            phi: 0.1,
            distribution: Distribution::Independent,
            seed: 42,
        }
        .generate(),
    );
    let constraints = ConstraintSet::weak_ranking(3, 2);

    let outcome = engine
        .query(&constraints)
        .top_k(5)
        .collect_stats(true)
        .run();

    println!(
        "Synthetic IND dataset: m = {}, n = {}, d = 3, WR constraints (c = 2)",
        engine.dataset().num_objects(),
        engine.dataset().num_instances()
    );
    println!(
        "  {} finished in {:?} (build {:?} + run {:?}); |ARSP| = {} instances",
        outcome.algorithm().name(),
        outcome.total_time(),
        outcome.build_time(),
        outcome.run_time(),
        outcome.result_size()
    );
    if let Some(counters) = outcome.counters() {
        println!(
            "  work: {} dominance tests, {} tree nodes visited",
            counters.fdom_tests, counters.nodes_visited
        );
    }
    println!("  Top-5 objects by rskyline probability:");
    for &(object, prob) in outcome.top_objects().unwrap() {
        println!("    object {object:4}  Pr_rsky = {prob:.4}");
    }

    // The same query again: every shared structure is served from the cache.
    let again = engine.query(&constraints).run();
    let stats = engine.cache_stats();
    println!(
        "  repeat query: build {:?} (cache: {} hits, {} misses)",
        again.build_time(),
        stats.hits,
        stats.misses
    );
    assert_eq!(outcome.result().probs(), again.result().probs());
}
