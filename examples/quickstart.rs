//! Quickstart: compute all restricted skyline probabilities on the paper's
//! running example and on a small synthetic dataset.
//!
//! Run with `cargo run --release --example quickstart`.

use arsp::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // 1. The paper's running example (Fig. 1 / Example 1): four uncertain
    //    objects with ten instances in two dimensions, and the preference
    //    "attribute 1 is between half and twice as important as attribute 2".
    // ------------------------------------------------------------------
    let dataset = paper_running_example();
    let ratio = WeightRatio::uniform(2, 0.5, 2.0);
    let constraints = ratio.to_constraint_set();

    let result = arsp_kdtt_plus(&dataset, &constraints);
    println!(
        "Paper running example ({} objects, {} instances)",
        dataset.num_objects(),
        dataset.num_instances()
    );
    for inst in dataset.instances() {
        println!(
            "  instance t{},{}  at {:?}  p = {:.3}  Pr_rsky = {:.4}",
            inst.object + 1,
            dataset
                .object(inst.object)
                .instance_ids
                .iter()
                .position(|&id| id == inst.id)
                .unwrap()
                + 1,
            inst.coords,
            inst.prob,
            result.instance_prob(inst.id),
        );
    }
    let object_probs = result.object_probs(&dataset);
    println!(
        "  Pr_rsky(T1) = {:.4} (the paper reports 2/9 ≈ 0.2222)",
        object_probs[0]
    );

    // Every algorithm agrees; the weight-ratio DUAL algorithm applies too.
    let dual = arsp_dual(&dataset, &ratio);
    let bnb = arsp_bnb(&dataset, &constraints);
    assert!(result.approx_eq(&dual, 1e-9));
    assert!(result.approx_eq(&bnb, 1e-9));
    println!("  KDTT+, B&B and DUAL agree to 1e-9.\n");

    // ------------------------------------------------------------------
    // 2. A synthetic workload: 2,000 objects, up to 8 instances each, three
    //    attributes, weak-ranking preferences.
    // ------------------------------------------------------------------
    let dataset = SyntheticConfig {
        num_objects: 2_000,
        max_instances: 8,
        dim: 3,
        region_length: 0.2,
        phi: 0.1,
        distribution: Distribution::Independent,
        seed: 42,
    }
    .generate();
    let constraints = ConstraintSet::weak_ranking(3, 2);

    let start = std::time::Instant::now();
    let result = arsp_kdtt_plus(&dataset, &constraints);
    let elapsed = start.elapsed();

    println!(
        "Synthetic IND dataset: m = {}, n = {}, d = 3, WR constraints (c = 2)",
        dataset.num_objects(),
        dataset.num_instances()
    );
    println!(
        "  KDTT+ finished in {elapsed:?}; |ARSP| = {} instances with non-zero probability",
        result.result_size()
    );
    println!("  Top-5 objects by rskyline probability:");
    for (object, prob) in result.top_k_objects(&dataset, 5) {
        println!("    object {object:4}  Pr_rsky = {prob:.4}");
    }
}
