//! The e-commerce scenario from the paper's introduction: probabilistic car
//! rental (Hotwire-style).
//!
//! The platform groups cars into categories and offers each category as a
//! *probabilistic car*: choosing it yields one of the concrete cars of the
//! group with a known probability. Customers care about horsepower (HP) and
//! fuel economy (MPG) and can only state rough preferences such as "MPG is at
//! least as important as HP", i.e. `F = {ω1·HP + ω2·MPG | ω1 ≤ ω2}`.
//!
//! The example shows how the rskyline probabilities rank the probabilistic
//! cars and how that differs from running an ordinary rskyline query on the
//! per-category averages (the "aggregated rskyline"), which is exactly the
//! comparison of the paper's effectiveness study.
//!
//! Run with `cargo run --release --example car_rental`.

use arsp::core::aggregate::aggregated_rskyline;
use arsp::prelude::*;

/// One concrete car: horsepower and miles-per-gallon (higher is better for
/// both, so they are stored negated/normalised to the "lower is better"
/// convention used throughout the crates).
fn car(hp: f64, mpg: f64) -> Vec<f64> {
    // HP in [60, 300] and MPG in [10, 60] mapped to [0, 1], flipped so that
    // lower values are preferred.
    vec![1.0 - (hp - 60.0) / 240.0, 1.0 - (mpg - 10.0) / 50.0]
}

fn main() {
    let mut dataset = UncertainDataset::new(2);

    // Each probabilistic car is a category: the customer gets any car of the
    // category with equal probability.
    let categories: Vec<(&str, Vec<(f64, f64)>)> = vec![
        (
            "compact-suv",
            vec![(180.0, 28.0), (200.0, 26.0), (170.0, 30.0)],
        ),
        ("midsize-sedan", vec![(190.0, 34.0), (210.0, 31.0)]),
        (
            "economy",
            vec![(110.0, 42.0), (95.0, 45.0), (120.0, 40.0), (105.0, 44.0)],
        ),
        ("luxury", vec![(280.0, 22.0), (260.0, 24.0)]),
        ("hybrid", vec![(150.0, 52.0), (140.0, 55.0), (160.0, 50.0)]),
        ("pickup", vec![(250.0, 18.0), (230.0, 20.0)]),
        (
            "mixed-bag",
            vec![(90.0, 30.0), (260.0, 21.0), (150.0, 45.0)],
        ),
    ];
    for (label, cars) in &categories {
        let p = 1.0 / cars.len() as f64;
        let instances = cars.iter().map(|&(hp, mpg)| (car(hp, mpg), p)).collect();
        dataset.push_labeled_object(Some((*label).to_string()), instances);
    }

    // "MPG (attribute 2) is at least as important as HP (attribute 1)":
    // ω1 ≤ ω2.
    let mut constraints = ConstraintSet::new(2);
    constraints.push(LinearConstraint::new(vec![1.0, -1.0], 0.0));

    let aggregated = aggregated_rskyline(&dataset, &constraints);
    let engine = ArspEngine::new(dataset);
    // `top_k` covering every category gives the full ranking directly — no
    // manual slice indexing and sorting.
    let outcome = engine
        .query(&constraints)
        .top_k(engine.dataset().num_objects())
        .run();

    println!("Probabilistic cars ranked by rskyline probability");
    println!("(categories marked with * are in the aggregated rskyline)\n");
    for &(object, prob) in outcome.top_objects().unwrap() {
        let marker = if aggregated.contains(&object) {
            "*"
        } else {
            " "
        };
        println!(
            "  {marker} {:14}  Pr_rsky = {prob:.4}   ({} concrete cars)",
            engine
                .dataset()
                .object(object)
                .label
                .as_deref()
                .unwrap_or("?"),
            engine.dataset().object(object).num_instances(),
        );
    }

    println!(
        "\nThe aggregated rskyline contains {} categories; ARSP additionally tells us how
likely each category is to actually hand the customer an undominated car —
categories with identical averages but wider spreads get very different
probabilities, which is the information the aggregation loses.",
        aggregated.len()
    );

    // Cross-check with the possible-world baseline (the dataset is tiny) —
    // forced through the same engine session.
    let truth = engine
        .query(&constraints)
        .algorithm(QueryAlgorithm::Enum)
        .run();
    assert!(truth.result().approx_eq(outcome.result(), 1e-9));
    println!("\n(Verified against exhaustive possible-world enumeration.)");
}
