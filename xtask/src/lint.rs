//! Repo-specific static analysis (`cargo xtask lint`).
//!
//! A dependency-free token scan over the workspace sources enforcing the
//! concurrency-correctness conventions that rustc cannot:
//!
//! 1. **sync-facade** — the serving/reclamation modules must reach their
//!    sync primitives through `arsp_core::sync` / `arsp_data::sync` (so the
//!    `interleave` model checker can swap them in), never
//!    `std::sync::{Mutex, Condvar, RwLock}` or `std::sync::atomic` directly.
//! 2. **lock-unwrap** — no `.unwrap()` in those modules: lock results go
//!    through the poisoning-aware `sync::lock` helper, everything else
//!    through `expect` with an invariant message.
//! 3. **kernel-purity** — the flat algorithm kernels stay free of
//!    `Instant::now` (timing belongs to the engine wrapper) and
//!    allocation-prone `.collect()` (the kernels draw working memory from
//!    scratch arenas).
//! 4. **safety-comments** — every `unsafe` token is preceded by a
//!    `// SAFETY:` comment (the workspace denies `unsafe_code`, so this
//!    guards any future, deliberately-allowed exception).
//! 5. **flat-engine-agreement** — every public `*flat_engine*` function in
//!    `arsp-core` is named in an integration test under `tests/`, keeping
//!    the bitwise-agreement suites coupled to the public flat API.
//! 6. **failpoint-coverage** — every fail-point site registered in
//!    `arsp_data::failpoint::SITES` must appear (as a quoted literal) in a
//!    kill matrix: the persistence sites in `tests/crash_recovery.rs`, the
//!    shard sites in `tests/shard_agreement.rs`. And every `hit("...")` on
//!    a write path (persistence or cluster) must name a registered site —
//!    so a fail-point added without a kill test, or a typo'd site name that
//!    would silently never fire, fails the lint.
//! 7. **supervisor-coverage** — every `QueryError` variant and every
//!    quarantine-machine edge in `cluster::TRANSITION_EDGES` must be named
//!    in at least one test under `tests/`, so a new typed error or state
//!    transition cannot land untested (and a vanished enum/array shape is
//!    reported rather than silently skipped).
//! 8. **standing-coverage** — every public function of the standing-query
//!    subsystem (`crates/core/src/standing.rs`) must be *called* (named with
//!    an opening paren) in a test under `tests/`, keeping the subscription
//!    protocol suite (`tests/standing_agreement.rs`) coupled to the public
//!    standing API.
//!
//! The scanner strips comments and string/char literals first, so banned
//! tokens in docs or messages never trigger, and the fixture snippets in
//! this file's unit tests can quote violations safely. Rules 6–7 partly
//! except themselves: the site names and edges they cross-reference *are*
//! string literals, so those parsers read the raw sources.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Serving/reclamation modules that must use the sync façades (rules 1–2).
const SYNC_SCOPE: &[&str] = &[
    "crates/core/src/service.rs",
    "crates/core/src/cluster.rs",
    "crates/core/src/coalesce.rs",
    "crates/core/src/stats.rs",
    "crates/core/src/scratch.rs",
    "crates/core/src/dynamic.rs",
    "crates/core/src/standing.rs",
    "crates/data/src/versioned.rs",
];

/// Direct-std tokens banned inside [`SYNC_SCOPE`] (rule 1). `Arc` and
/// `Barrier` are deliberately absent: the façades re-export `Arc`
/// unchanged, and `Barrier` only appears in tests as a start-line gate.
const SYNC_BANNED: &[&str] = &[
    "std::sync::Mutex",
    "std::sync::Condvar",
    "std::sync::RwLock",
    "std::sync::atomic",
];

/// Flat algorithm kernels that must stay timing- and allocation-free
/// (rule 3): file → the functions scanned in it.
const KERNEL_SCOPE: &[(&str, &[&str])] = &[
    (
        "crates/core/src/algorithms/kd_asp.rs",
        &[
            "fused_rec_flat",
            "prebuilt_rec_flat",
            "flat_candidate_pass",
            "flat_node_enter",
            "flat_node_exit",
            "flat_sky_add",
            "flat_leaf_probability",
            "emit_coincident_flat",
            "flat_corners",
            "flat_kd_partition",
            "flat_quad_group",
        ],
    ),
    (
        "crates/core/src/algorithms/loop_scan.rs",
        &["instance_probability_flat"],
    ),
    (
        "crates/core/src/algorithms/dual.rs",
        &["dual_instance_prob"],
    ),
    (
        "crates/core/src/algorithms/bnb.rs",
        &["fold_window_products", "is_pruned", "expand_node"],
    ),
];

/// Rule 6 inputs: the fail-point registry, the write paths that call
/// `hit(...)`, and the crash suites whose kill matrices must together
/// cover every registered site.
const FAILPOINT_REGISTRY: &str = "crates/data/src/failpoint.rs";
const FAILPOINT_WRITE_PATHS: &[&str] =
    &["crates/data/src/persist.rs", "crates/core/src/cluster.rs"];
const CRASH_SUITES: &[&str] = &["tests/crash_recovery.rs", "tests/shard_agreement.rs"];

/// Rule 7 inputs: the typed query errors and the quarantine state machine.
const QUERY_ERROR_FILE: &str = "crates/core/src/fault.rs";
const CLUSTER_FILE: &str = "crates/core/src/cluster.rs";

/// Rule 8 input: the standing-query subsystem whose public API must be
/// exercised by the integration tests.
const STANDING_FILE: &str = "crates/core/src/standing.rs";

/// Source roots scanned for rule 4 (and walked when loading files).
const SAFETY_ROOTS: &[&str] = &[
    "src",
    "tests",
    "crates",
    "xtask/src",
    "vendor/interleave/src",
];

/// One finding; `file` is repo-relative, `line` 1-based.
#[derive(Debug, PartialEq, Eq)]
pub struct Violation {
    pub file: String,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Entry point for `cargo xtask lint`.
pub fn run() -> ExitCode {
    let root = repo_root();
    match lint_tree(&root) {
        Ok(violations) if violations.is_empty() => {
            eprintln!("xtask lint: ok");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                eprintln!("{v}");
            }
            eprintln!("xtask lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(err) => {
            eprintln!("xtask lint: {err}");
            ExitCode::FAILURE
        }
    }
}

fn repo_root() -> PathBuf {
    // xtask lives at <root>/xtask.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask has a parent directory")
        .to_path_buf()
}

/// Runs every rule over the tree rooted at `root`.
fn lint_tree(root: &Path) -> Result<Vec<Violation>, String> {
    let mut violations = Vec::new();

    // Rules 1–2 over the façade-scoped modules.
    for rel in SYNC_SCOPE {
        let source = read(root, rel)?;
        let stripped = strip_code(&source);
        violations.extend(check_sync_facade(rel, &stripped));
        violations.extend(check_lock_unwrap(rel, &stripped));
    }

    // Rule 3 over the flat kernels.
    for (rel, kernels) in KERNEL_SCOPE {
        let source = read(root, rel)?;
        let stripped = strip_code(&source);
        violations.extend(check_kernel_purity(rel, &stripped, kernels));
    }

    // Rule 4 over every first-party source file.
    for dir in SAFETY_ROOTS {
        for path in rust_files(&root.join(dir)) {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let source = fs::read_to_string(&path).map_err(|e| format!("reading {rel}: {e}"))?;
            violations.extend(check_safety_comments(&rel, &source));
        }
    }

    // Rule 5: public flat-engine API ↔ integration tests.
    let mut core_stripped = Vec::new();
    for path in rust_files(&root.join("crates/core/src")) {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = fs::read_to_string(&path).map_err(|e| format!("reading {rel}: {e}"))?;
        core_stripped.push((rel, strip_code(&source)));
    }
    let mut tests_text = String::new();
    for path in rust_files(&root.join("tests")) {
        tests_text.push_str(
            &fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))?,
        );
        tests_text.push('\n');
    }
    for (rel, stripped) in &core_stripped {
        violations.extend(check_flat_engine_agreement(rel, stripped, &tests_text));
    }

    // Rule 6: fail-point registry ↔ crash-suite kill matrices (raw
    // sources — the cross-referenced site names are string literals).
    let registry = read(root, FAILPOINT_REGISTRY)?;
    let mut write_paths = Vec::new();
    for rel in FAILPOINT_WRITE_PATHS {
        write_paths.push((*rel, read(root, rel)?));
    }
    let mut suites_text = String::new();
    for rel in CRASH_SUITES {
        suites_text.push_str(&read(root, rel)?);
        suites_text.push('\n');
    }
    violations.extend(check_failpoint_coverage(
        &registry,
        &write_paths,
        &suites_text,
    ));

    // Rule 7: typed errors and quarantine edges ↔ the test tree (raw
    // sources — the edges are string literals).
    let fault_source = read(root, QUERY_ERROR_FILE)?;
    let cluster_source = read(root, CLUSTER_FILE)?;
    violations.extend(check_supervisor_coverage(
        &fault_source,
        &cluster_source,
        &tests_text,
    ));

    // Rule 8: public standing-query API ↔ integration tests.
    let standing_stripped = strip_code(&read(root, STANDING_FILE)?);
    violations.extend(check_standing_coverage(&standing_stripped, &tests_text));

    violations.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(violations)
}

fn read(root: &Path, rel: &str) -> Result<String, String> {
    fs::read_to_string(root.join(rel)).map_err(|e| format!("reading {rel}: {e}"))
}

/// All `.rs` files under `dir`, recursively (empty when `dir` is absent).
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let Ok(entries) = fs::read_dir(dir) else {
        return files;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            files.extend(rust_files(&path));
        } else if path.extension().is_some_and(|e| e == "rs") {
            files.push(path);
        }
    }
    files.sort();
    files
}

// ---------------------------------------------------------------------------
// Lexer: blank out comments and string/char literals, preserving layout
// ---------------------------------------------------------------------------

/// Returns `source` with comments (line, nested block) and string/char
/// literals replaced by spaces. Newlines survive, so byte offsets and line
/// numbers in the result match the original.
fn strip_code(source: &str) -> String {
    let bytes = source.as_bytes();
    let mut out = bytes.to_vec();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    out[i] = b' ';
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut depth = 0usize;
                while i < bytes.len() {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        if bytes[i] != b'\n' {
                            out[i] = b' ';
                        }
                        i += 1;
                    }
                }
            }
            b'r' if is_raw_string_start(bytes, i) => {
                // r"..." / r#"..."# / r##"..."## — skip to the matching
                // closer with the same hash count.
                let start = i;
                i += 1;
                let mut hashes = 0;
                while bytes.get(i) == Some(&b'#') {
                    hashes += 1;
                    i += 1;
                }
                i += 1; // opening quote
                while let Some(&b) = bytes.get(i) {
                    if b == b'"' && (1..=hashes).all(|k| bytes.get(i + k) == Some(&b'#')) {
                        i += 1 + hashes;
                        break;
                    }
                    i += 1;
                }
                blank(&mut out, start, i);
            }
            b'"' => {
                let start = i;
                i += 1;
                while i < bytes.len() {
                    if bytes[i] == b'\\' {
                        i += 2;
                    } else if bytes[i] == b'"' {
                        i += 1;
                        break;
                    } else {
                        i += 1;
                    }
                }
                blank(&mut out, start, i);
            }
            b'\'' if is_char_literal(bytes, i) => {
                let start = i;
                i += 1;
                if bytes.get(i) == Some(&b'\\') {
                    i += 2;
                    // \u{...} escapes run to the closing quote.
                    while i < bytes.len() && bytes[i] != b'\'' {
                        i += 1;
                    }
                } else {
                    i += 1;
                }
                i += 1; // closing quote
                blank(&mut out, start, i.min(bytes.len()));
            }
            _ => i += 1,
        }
    }
    String::from_utf8(out).expect("blanking ASCII bytes keeps the source UTF-8")
}

fn blank(out: &mut [u8], from: usize, to: usize) {
    let to = to.min(out.len());
    for b in &mut out[from..to] {
        if *b != b'\n' {
            *b = b' ';
        }
    }
}

fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    // `r"` or `r#...#"` beginning a raw string, not the tail of an
    // identifier (`for r in ..` has no quote after the `r`).
    if i > 0 && is_ident_byte(bytes[i - 1]) {
        return false;
    }
    let mut j = i + 1;
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

/// Distinguishes `'x'` / `'\n'` char literals from `'a` lifetimes.
fn is_char_literal(bytes: &[u8], i: usize) -> bool {
    match bytes.get(i + 1) {
        Some(&b'\\') => true,
        Some(_) => bytes.get(i + 2) == Some(&b'\''),
        None => false,
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn line_of(text: &str, offset: usize) -> usize {
    text[..offset].bytes().filter(|&b| b == b'\n').count() + 1
}

// ---------------------------------------------------------------------------
// Rule 1: sync-facade
// ---------------------------------------------------------------------------

fn check_sync_facade(file: &str, stripped: &str) -> Vec<Violation> {
    let mut violations = Vec::new();
    for banned in SYNC_BANNED {
        let mut from = 0;
        while let Some(pos) = stripped[from..].find(banned) {
            let offset = from + pos;
            violations.push(Violation {
                file: file.to_string(),
                line: line_of(stripped, offset),
                rule: "sync-facade",
                message: format!(
                    "direct `{banned}` in a serving/reclamation module; go through \
                     the crate `sync` façade so the model checker can intercept it"
                ),
            });
            from = offset + banned.len();
        }
    }
    violations
}

// ---------------------------------------------------------------------------
// Rule 2: lock-unwrap
// ---------------------------------------------------------------------------

fn check_lock_unwrap(file: &str, stripped: &str) -> Vec<Violation> {
    let mut violations = Vec::new();
    for (idx, line) in stripped.lines().enumerate() {
        let condensed: String = line.chars().filter(|c| !c.is_whitespace()).collect();
        if condensed.contains(".unwrap()") {
            violations.push(Violation {
                file: file.to_string(),
                line: idx + 1,
                rule: "lock-unwrap",
                message: "`.unwrap()` in a serving/reclamation module; use the \
                          poisoning-aware `sync::lock` helper for locks, or `expect` \
                          with an invariant message"
                    .to_string(),
            });
        }
    }
    violations
}

// ---------------------------------------------------------------------------
// Rule 3: kernel-purity
// ---------------------------------------------------------------------------

fn check_kernel_purity(file: &str, stripped: &str, kernels: &[&str]) -> Vec<Violation> {
    let mut violations = Vec::new();
    for kernel in kernels {
        let Some((body_start, body_end)) = function_body(stripped, kernel) else {
            violations.push(Violation {
                file: file.to_string(),
                line: 1,
                rule: "kernel-purity",
                message: format!(
                    "watched kernel `fn {kernel}` not found; update the lint's \
                     KERNEL_SCOPE to follow the rename"
                ),
            });
            continue;
        };
        let body = &stripped[body_start..body_end];
        for banned in ["Instant::now", ".collect("] {
            let mut from = 0;
            while let Some(pos) = body[from..].find(banned) {
                let offset = body_start + from + pos;
                violations.push(Violation {
                    file: file.to_string(),
                    line: line_of(stripped, offset),
                    rule: "kernel-purity",
                    message: format!(
                        "`{banned}` inside flat kernel `{kernel}`: kernels must stay \
                         timing-free and allocation-free (use the scratch arenas)"
                    ),
                });
                from += pos + banned.len();
            }
        }
    }
    violations
}

/// Byte range of `fn name`'s body (between its outermost braces), matching
/// the name exactly (not as a prefix of a longer identifier).
fn function_body(stripped: &str, name: &str) -> Option<(usize, usize)> {
    let bytes = stripped.as_bytes();
    let needle = format!("fn {name}");
    let mut from = 0;
    while let Some(pos) = stripped[from..].find(&needle) {
        let start = from + pos;
        let after = start + needle.len();
        from = after;
        // Reject `fn foo_bar` when looking for `fn foo`.
        if bytes.get(after).copied().is_some_and(is_ident_byte) {
            continue;
        }
        let open = stripped[after..].find('{')? + after;
        let mut depth = 0usize;
        for (i, &b) in bytes.iter().enumerate().skip(open) {
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        return Some((open, i + 1));
                    }
                }
                _ => {}
            }
        }
        return None;
    }
    None
}

// ---------------------------------------------------------------------------
// Rule 4: safety-comments
// ---------------------------------------------------------------------------

fn check_safety_comments(file: &str, source: &str) -> Vec<Violation> {
    let stripped = strip_code(source);
    let original_lines: Vec<&str> = source.lines().collect();
    let mut violations = Vec::new();
    let bytes = stripped.as_bytes();
    let mut from = 0;
    while let Some(pos) = stripped[from..].find("unsafe") {
        let offset = from + pos;
        from = offset + "unsafe".len();
        let before_ok = offset == 0 || !is_ident_byte(bytes[offset - 1]);
        let after_ok = bytes
            .get(offset + "unsafe".len())
            .map_or(true, |&b| !is_ident_byte(b));
        if !(before_ok && after_ok) {
            continue; // part of `unsafe_code` or a similar identifier
        }
        let line = line_of(&stripped, offset);
        let documented = original_lines[line.saturating_sub(4)..line - 1]
            .iter()
            .any(|l| l.contains("SAFETY:"));
        if !documented {
            violations.push(Violation {
                file: file.to_string(),
                line,
                rule: "safety-comments",
                message: "`unsafe` without a `// SAFETY:` comment on the preceding \
                          lines stating the invariant that makes it sound"
                    .to_string(),
            });
        }
    }
    violations
}

// ---------------------------------------------------------------------------
// Rule 5: flat-engine-agreement
// ---------------------------------------------------------------------------

fn check_flat_engine_agreement(file: &str, stripped: &str, tests_text: &str) -> Vec<Violation> {
    let mut violations = Vec::new();
    for (offset, name) in public_fns(stripped) {
        if name.contains("flat_engine") && !tests_text.contains(&name) {
            violations.push(Violation {
                file: file.to_string(),
                line: line_of(stripped, offset),
                rule: "flat-engine-agreement",
                message: format!(
                    "public flat engine `{name}` is not named in any integration \
                     test under tests/; add it to the bitwise-agreement suite \
                     (tests/flat_engine_agreement.rs)"
                ),
            });
        }
    }
    violations
}

/// `(offset, name)` of every `pub fn` in stripped source.
fn public_fns(stripped: &str) -> Vec<(usize, String)> {
    let bytes = stripped.as_bytes();
    let mut fns = Vec::new();
    let mut from = 0;
    while let Some(pos) = stripped[from..].find("pub fn ") {
        let offset = from + pos;
        let name_start = offset + "pub fn ".len();
        let name_end = bytes[name_start..]
            .iter()
            .position(|&b| !is_ident_byte(b))
            .map_or(bytes.len(), |p| name_start + p);
        if name_end > name_start {
            fns.push((offset, stripped[name_start..name_end].to_string()));
        }
        from = name_end;
    }
    fns
}

// ---------------------------------------------------------------------------
// Rule 8: standing-coverage
// ---------------------------------------------------------------------------

/// Every `pub fn` of the standing subsystem must appear as a call —
/// `name(` — somewhere under `tests/`. The paren requirement keeps short
/// names (`id`, `poll`, `drain`) from being satisfied by prose or unrelated
/// identifiers that merely contain them.
fn check_standing_coverage(stripped: &str, tests_text: &str) -> Vec<Violation> {
    let mut violations = Vec::new();
    for (offset, name) in public_fns(stripped) {
        if !tests_text.contains(&format!("{name}(")) {
            violations.push(Violation {
                file: STANDING_FILE.to_string(),
                line: line_of(stripped, offset),
                rule: "standing-coverage",
                message: format!(
                    "public standing API `{name}` is not called in any integration \
                     test under tests/; exercise it in the subscription protocol \
                     suite (tests/standing_agreement.rs)"
                ),
            });
        }
    }
    violations
}

// ---------------------------------------------------------------------------
// Rule 6: failpoint-coverage
// ---------------------------------------------------------------------------

fn check_failpoint_coverage(
    registry_source: &str,
    write_paths: &[(&str, String)],
    suites_text: &str,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    let sites = const_str_array(registry_source, "SITES");
    if sites.is_empty() {
        violations.push(Violation {
            file: FAILPOINT_REGISTRY.to_string(),
            line: 1,
            rule: "failpoint-coverage",
            message: "no `SITES` array with site literals found; update the lint's \
                      failpoint parser to follow the registry's shape"
                .to_string(),
        });
        return violations;
    }

    // Every registered site must be a quoted literal in some crash suite's
    // kill matrix.
    for (offset, site) in &sites {
        if !suites_text.contains(&format!("\"{site}\"")) {
            violations.push(Violation {
                file: FAILPOINT_REGISTRY.to_string(),
                line: line_of(registry_source, *offset),
                rule: "failpoint-coverage",
                message: format!(
                    "fail-point site `{site}` has no kill test: add it to a kill \
                     matrix in one of {CRASH_SUITES:?}"
                ),
            });
        }
    }

    // Every `hit("...")` on a write path must name a registered site (a
    // typo'd name would compile yet never fire).
    for (rel, source) in write_paths {
        for (offset, site) in hit_literals(source) {
            if !sites.iter().any(|(_, s)| *s == site) {
                violations.push(Violation {
                    file: (*rel).to_string(),
                    line: line_of(source, offset),
                    rule: "failpoint-coverage",
                    message: format!(
                        "`hit(\"{site}\")` names an unregistered fail-point site; \
                         register it in failpoint::SITES (and a kill matrix)"
                    ),
                });
            }
        }
    }
    violations
}

/// `(offset, contents)` of every string literal inside the bracketed array
/// initialiser of the named `const` in raw source (shared by the `SITES`
/// and `TRANSITION_EDGES` parsers).
fn const_str_array(source: &str, name: &str) -> Vec<(usize, String)> {
    let Some(decl) = source.find(name) else {
        return Vec::new();
    };
    // Seek past the `=` so the `[` of the `&[&str]` type annotation is not
    // mistaken for the array opener.
    let Some(eq_rel) = source[decl..].find('=') else {
        return Vec::new();
    };
    let assign = decl + eq_rel;
    let Some(open_rel) = source[assign..].find('[') else {
        return Vec::new();
    };
    let open = assign + open_rel;
    let close = source[open..].find(']').map_or(source.len(), |p| open + p);
    string_literals(&source[open..close])
        .into_iter()
        .map(|(off, name)| (open + off, name))
        .collect()
}

/// `(offset, name)` of the literal in every `hit("...")` call in raw source.
fn hit_literals(source: &str) -> Vec<(usize, String)> {
    let mut literals = Vec::new();
    let mut from = 0;
    while let Some(pos) = source[from..].find("hit(\"") {
        let offset = from + pos;
        let rest = &source[offset + "hit(\"".len()..];
        match rest.find('"') {
            Some(end) => {
                literals.push((offset, rest[..end].to_string()));
                from = offset + "hit(\"".len() + end + 1;
            }
            None => break,
        }
    }
    literals
}

// ---------------------------------------------------------------------------
// Rule 7: supervisor-coverage
// ---------------------------------------------------------------------------

fn check_supervisor_coverage(
    fault_source: &str,
    cluster_source: &str,
    tests_text: &str,
) -> Vec<Violation> {
    let mut violations = Vec::new();

    // Every typed query error must be exercised by name somewhere in the
    // integration-test tree.
    let variants = enum_variants(&strip_code(fault_source), "QueryError");
    if variants.is_empty() {
        violations.push(Violation {
            file: QUERY_ERROR_FILE.to_string(),
            line: 1,
            rule: "supervisor-coverage",
            message: "no `enum QueryError` variants found; update the lint's enum \
                      parser to follow the fault module's shape"
                .to_string(),
        });
    }
    for (offset, variant) in &variants {
        if !tests_text.contains(variant.as_str()) {
            violations.push(Violation {
                file: QUERY_ERROR_FILE.to_string(),
                line: line_of(fault_source, *offset),
                rule: "supervisor-coverage",
                message: format!(
                    "`QueryError::{variant}` is not named in any test under tests/; \
                     a typed error nobody can trigger in a test is either untested \
                     or dead"
                ),
            });
        }
    }

    // Every quarantine-machine edge must be pinned by a test naming its
    // literal (the state-machine walk in tests/shard_agreement.rs).
    let edges = const_str_array(cluster_source, "TRANSITION_EDGES");
    if edges.is_empty() {
        violations.push(Violation {
            file: CLUSTER_FILE.to_string(),
            line: 1,
            rule: "supervisor-coverage",
            message: "no `TRANSITION_EDGES` array with edge literals found; update \
                      the lint's parser to follow the cluster module's shape"
                .to_string(),
        });
    }
    for (offset, edge) in &edges {
        if !tests_text.contains(&format!("\"{edge}\"")) {
            violations.push(Violation {
                file: CLUSTER_FILE.to_string(),
                line: line_of(cluster_source, *offset),
                rule: "supervisor-coverage",
                message: format!(
                    "quarantine edge `{edge}` is not named in any test under \
                     tests/; add it to the state-machine walk in \
                     tests/shard_agreement.rs"
                ),
            });
        }
    }
    violations
}

/// `(offset, name)` of every variant of `enum <name>` in stripped source.
/// Variants are identifiers at brace depth 1 (relative to the enum body)
/// outside parens/brackets, right after the opening brace, a `,`, or a
/// struct-variant's closing `}` — which skips field names (depth 2),
/// attribute arguments (bracket depth ≥ 1), and tuple payloads (paren
/// depth ≥ 1).
fn enum_variants(stripped: &str, name: &str) -> Vec<(usize, String)> {
    let needle = format!("enum {name}");
    let Some(decl) = stripped.find(&needle) else {
        return Vec::new();
    };
    let Some(open_rel) = stripped[decl..].find('{') else {
        return Vec::new();
    };
    let open = decl + open_rel;
    let bytes = stripped.as_bytes();
    let mut variants = Vec::new();
    let (mut brace, mut paren, mut bracket) = (0usize, 0usize, 0usize);
    let mut expecting = false;
    let mut i = open;
    while i < bytes.len() {
        match bytes[i] {
            b'{' => {
                brace += 1;
                expecting = brace == 1;
            }
            b'}' => {
                brace -= 1;
                if brace == 0 {
                    break;
                }
                expecting = brace == 1;
            }
            b',' if brace == 1 && paren == 0 && bracket == 0 => expecting = true,
            b'(' => paren += 1,
            b')' => paren = paren.saturating_sub(1),
            b'[' => bracket += 1,
            b']' => bracket = bracket.saturating_sub(1),
            b if expecting
                && brace == 1
                && paren == 0
                && bracket == 0
                && b.is_ascii_uppercase() =>
            {
                let start = i;
                while i < bytes.len() && is_ident_byte(bytes[i]) {
                    i += 1;
                }
                variants.push((start, stripped[start..i].to_string()));
                expecting = false;
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    variants
}

/// `(offset, contents)` of every plain `"..."` literal in `text` (no escape
/// handling — fail-point site names are bare dotted identifiers).
fn string_literals(text: &str) -> Vec<(usize, String)> {
    let mut literals = Vec::new();
    let mut rest = text;
    let mut base = 0;
    while let Some(start) = rest.find('"') {
        let after = &rest[start + 1..];
        let Some(len) = after.find('"') else { break };
        literals.push((base + start, after[..len].to_string()));
        let consumed = start + 1 + len + 1;
        base += consumed;
        rest = &rest[consumed..];
    }
    literals
}

// ---------------------------------------------------------------------------
// Fixture tests: each rule must fire on a violating snippet and stay quiet
// on the idiomatic one.
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexer_blanks_comments_and_strings_but_keeps_layout() {
        let src = "let a = 1; // std::sync::Mutex in a comment\n\
                   let b = \"std::sync::Mutex in a string\";\n\
                   /* block\nstd::sync::Mutex\n*/ let c = 'x';\n\
                   let d = r#\"raw std::sync::Mutex\"#;\n";
        let stripped = strip_code(src);
        assert!(!stripped.contains("std::sync::Mutex"));
        assert_eq!(stripped.lines().count(), src.lines().count());
        assert!(stripped.contains("let a = 1;"));
        assert!(stripped.contains("let d ="));
    }

    #[test]
    fn lexer_keeps_lifetimes_but_blanks_char_literals() {
        let stripped = strip_code("fn f<'a>(x: &'a str) -> char { 'y' }");
        assert!(stripped.contains("<'a>"), "lifetime was eaten: {stripped}");
        assert!(!stripped.contains("'y'"));
    }

    #[test]
    fn sync_facade_fires_on_direct_std_and_passes_the_facade() {
        let bad = strip_code("use std::sync::Mutex;\nuse std::sync::atomic::AtomicU64;\n");
        let violations = check_sync_facade("f.rs", &bad);
        assert_eq!(violations.len(), 2);
        assert_eq!(violations[0].line, 1);
        assert_eq!(violations[1].line, 2);

        let good = strip_code(
            "use crate::sync::{lock, Arc, Mutex};\nuse crate::sync::atomic::AtomicU64;\n\
             use std::sync::Barrier; // allowed: test start-line gate\n",
        );
        assert!(check_sync_facade("f.rs", &good).is_empty());
    }

    #[test]
    fn lock_unwrap_fires_on_unwrap_and_passes_expect_and_unwrap_or_else() {
        let bad = strip_code("let g = self.inner.lock().unwrap();\nlet v = row . unwrap () ;\n");
        let violations = check_lock_unwrap("f.rs", &bad);
        assert_eq!(violations.len(), 2);

        let good = strip_code(
            "let g = lock(&self.inner);\n\
             let v = row.expect(\"handle taken from a live row\");\n\
             let w = m.get_mut().unwrap_or_else(|p| p.into_inner());\n",
        );
        assert!(check_lock_unwrap("f.rs", &good).is_empty());
    }

    #[test]
    fn kernel_purity_fires_inside_watched_kernels_only() {
        let src = strip_code(
            "fn flat_sky_add(x: u64) { let t = Instant::now(); }\n\
             fn unwatched() { let v: Vec<u64> = it.collect(); }\n",
        );
        let violations = check_kernel_purity("f.rs", &src, &["flat_sky_add"]);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message.contains("Instant::now"));

        let clean = strip_code("fn flat_sky_add(x: u64) -> u64 { x + 1 }\n");
        assert!(check_kernel_purity("f.rs", &clean, &["flat_sky_add"]).is_empty());
    }

    #[test]
    fn kernel_purity_fires_on_collect_and_matches_names_exactly() {
        let src = strip_code(
            "fn flat_corners_par() { let v: Vec<u64> = it.collect(); }\n\
             fn flat_corners() { let y = 1; }\n",
        );
        // `flat_corners` is clean; `flat_corners_par` must NOT be matched
        // when looking for `flat_corners`.
        assert!(check_kernel_purity("f.rs", &src, &["flat_corners"]).is_empty());

        let bad = strip_code("fn flat_corners() { let v: Vec<u64> = it.collect(); }\n");
        let violations = check_kernel_purity("f.rs", &bad, &["flat_corners"]);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message.contains(".collect"));
    }

    #[test]
    fn kernel_purity_reports_a_vanished_kernel() {
        let violations = check_kernel_purity("f.rs", "fn other() {}", &["flat_sky_add"]);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message.contains("not found"));
    }

    #[test]
    fn safety_comments_fire_without_a_safety_comment() {
        let bad = "fn f() {\n    unsafe { do_thing() }\n}\n";
        let violations = check_safety_comments("f.rs", bad);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].line, 2);

        let good = "fn f() {\n    // SAFETY: the pointer outlives the call.\n    unsafe { do_thing() }\n}\n";
        assert!(check_safety_comments("f.rs", good).is_empty());
    }

    #[test]
    fn safety_comments_ignore_the_unsafe_code_lint_name_and_comments() {
        let src = "#![deny(unsafe_code)]\n// mentioning unsafe in a comment is fine\n";
        assert!(check_safety_comments("f.rs", src).is_empty());
    }

    #[test]
    fn flat_engine_agreement_requires_a_test_mention() {
        let core = strip_code("pub fn demo_flat_engine(x: u64) -> u64 { x }\n");
        let violations = check_flat_engine_agreement("f.rs", &core, "fn other_test() {}");
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message.contains("demo_flat_engine"));

        let mentioned = "fn agreement() { let _ = demo_flat_engine(1); }";
        assert!(check_flat_engine_agreement("f.rs", &core, mentioned).is_empty());

        // Private helpers and non-flat functions are out of scope.
        let private = strip_code("fn helper_flat_engine() {}\npub fn not_flat() {}\n");
        assert!(check_flat_engine_agreement("f.rs", &private, "").is_empty());
    }

    #[test]
    fn standing_coverage_requires_a_test_call() {
        let standing = strip_code(
            "impl SubscriptionGuard {\n    pub fn poll(&self) -> Option<ChangeBatch> { None }\n}\n",
        );
        let violations = check_standing_coverage(&standing, "fn other_test() {}");
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].rule, "standing-coverage");
        assert!(violations[0].message.contains("`poll`"));

        // A call — `poll(` — satisfies the rule; a bare mention does not.
        assert!(check_standing_coverage(&standing, "let b = sub.poll();").is_empty());
        let violations = check_standing_coverage(&standing, "// we should poll the feed");
        assert_eq!(violations.len(), 1);
    }

    #[test]
    fn standing_coverage_skips_private_and_crate_fns() {
        let standing = strip_code(
            "fn diff_maintained() {}\npub(crate) fn refresh(&self) {}\npub fn drain(&self) {}\n",
        );
        let violations = check_standing_coverage(&standing, "guard.drain();");
        assert!(violations.is_empty(), "{violations:?}");
    }

    const REGISTRY_FIXTURE: &str =
        "pub const SITES: &[&str] = &[\n    \"wal.append\",\n    \"snapshot.rename\",\n];\n";

    #[test]
    fn failpoint_sites_are_parsed_from_the_raw_registry() {
        let sites: Vec<String> = const_str_array(REGISTRY_FIXTURE, "SITES")
            .into_iter()
            .map(|(_, s)| s)
            .collect();
        assert_eq!(sites, ["wal.append", "snapshot.rename"]);
        assert!(const_str_array("fn no_sites() {}", "SITES").is_empty());
    }

    #[test]
    fn failpoint_coverage_fires_on_an_untested_site() {
        let suites = "const CRASH_MATRIX: &[&str] = &[\"wal.append\"];\n";
        let violations = check_failpoint_coverage(REGISTRY_FIXTURE, &[], suites);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message.contains("snapshot.rename"));
        assert_eq!(violations[0].line, 3);
    }

    #[test]
    fn failpoint_coverage_fires_on_an_unregistered_hit() {
        let suites = "&[\"wal.append\", \"snapshot.rename\"]";
        let write_path = "failpoint::hit(\"wal.append\")?;\nfailpoint::hit(\"wal.typo\")?;\n";
        let violations = check_failpoint_coverage(
            REGISTRY_FIXTURE,
            &[("w.rs", write_path.to_string())],
            suites,
        );
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message.contains("wal.typo"));
        assert_eq!(violations[0].file, "w.rs");
        assert_eq!(violations[0].line, 2);
    }

    #[test]
    fn failpoint_coverage_passes_a_consistent_tree_and_flags_a_shapeless_registry() {
        // The two kill matrices together cover the registry; each write
        // path's hits resolve.
        let suites = "&[\"wal.append\"]\n&[\"snapshot.rename\"]";
        let write_paths = [
            (
                "a.rs",
                "failpoint::hit(\"snapshot.rename\")?;\n".to_string(),
            ),
            ("b.rs", "failpoint::hit(\"wal.append\")?;\n".to_string()),
        ];
        assert!(check_failpoint_coverage(REGISTRY_FIXTURE, &write_paths, suites).is_empty());

        let violations = check_failpoint_coverage("fn no_sites() {}", &write_paths, suites);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message.contains("no `SITES` array"));
    }

    const FAULT_FIXTURE: &str = "pub enum QueryError {\n\
         \x20   DeadlineExceeded { elapsed: Duration, budget: Duration },\n\
         \x20   Panicked(String),\n\
         \x20   ShardUnavailable { shards_missing: Vec<usize> },\n\
         }\n";

    const CLUSTER_FIXTURE: &str =
        "pub const TRANSITION_EDGES: &[&str] = &[\n    \"healthy->degraded\",\n    \
         \"degraded->healthy\",\n];\n";

    #[test]
    fn enum_variants_skip_fields_and_payloads() {
        let variants: Vec<String> = enum_variants(&strip_code(FAULT_FIXTURE), "QueryError")
            .into_iter()
            .map(|(_, v)| v)
            .collect();
        assert_eq!(
            variants,
            ["DeadlineExceeded", "Panicked", "ShardUnavailable"],
            "field names, payload types or attribute args leaked in"
        );
        assert!(enum_variants("fn not_an_enum() {}", "QueryError").is_empty());
    }

    #[test]
    fn supervisor_coverage_fires_on_an_untested_variant_and_edge() {
        let tests = "fn t() { let _ = QueryError::DeadlineExceeded; \
                     assert_eq!(e, \"healthy->degraded\"); Panicked; }";
        let violations = check_supervisor_coverage(FAULT_FIXTURE, CLUSTER_FIXTURE, tests);
        assert_eq!(violations.len(), 2, "{violations:?}");
        assert!(violations[0].message.contains("ShardUnavailable"));
        assert!(violations[1].message.contains("degraded->healthy"));
    }

    #[test]
    fn supervisor_coverage_passes_full_coverage_and_reports_vanished_shapes() {
        let tests = "DeadlineExceeded Panicked ShardUnavailable \
                     \"healthy->degraded\" \"degraded->healthy\"";
        assert!(check_supervisor_coverage(FAULT_FIXTURE, CLUSTER_FIXTURE, tests).is_empty());

        // A refactor that renames the enum or the edge array must surface
        // as a parser-shape violation, never as silent non-coverage.
        let violations = check_supervisor_coverage("enum Renamed {}", CLUSTER_FIXTURE, tests);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message.contains("no `enum QueryError`"));
        let violations = check_supervisor_coverage(FAULT_FIXTURE, "const EDGES: u8 = 0;", tests);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].message.contains("no `TRANSITION_EDGES`"));
    }

    #[test]
    fn the_repository_tree_is_clean() {
        let root = repo_root();
        let violations = lint_tree(&root).expect("lint walks the tree");
        assert!(
            violations.is_empty(),
            "lint violations in the tree:\n{}",
            violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
