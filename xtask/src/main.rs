//! Workspace automation (`cargo xtask <command>`).

#![deny(unsafe_code)]

mod lint;

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint::run(),
        Some("model-check") => model_check(args.collect()),
        Some(other) => {
            eprintln!("xtask: unknown command `{other}`");
            usage();
            ExitCode::FAILURE
        }
        None => {
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!(
        "usage: cargo xtask <command>\n\
         \n\
         commands:\n\
         \x20 lint          run the repo-invariant static-analysis pass\n\
         \x20 model-check   run the interleave model-checked protocol tests\n\
         \x20               (extra args are forwarded to `cargo test`)"
    );
}

/// Runs `tests/model_check.rs` with the `arsp_model_check` cfg enabled so
/// the sync façades resolve to the vendored `interleave` model checker.
/// Uses a dedicated target dir: the custom --cfg changes every crate's
/// fingerprint and would otherwise thrash the normal build cache.
fn model_check(extra: Vec<String>) -> ExitCode {
    let mut rustflags = std::env::var("RUSTFLAGS").unwrap_or_default();
    if !rustflags.is_empty() {
        rustflags.push(' ');
    }
    rustflags.push_str("--cfg arsp_model_check");
    let status = std::process::Command::new(env!("CARGO"))
        .args(["test", "--release", "--test", "model_check"])
        .args(&extra)
        .args(["--", "--nocapture"])
        .env("RUSTFLAGS", rustflags)
        .env("CARGO_TARGET_DIR", "target/model-check")
        .status();
    match status {
        Ok(s) if s.success() => ExitCode::SUCCESS,
        Ok(_) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("xtask: failed to run cargo: {e}");
            ExitCode::FAILURE
        }
    }
}
